"""Communication cost model for partition search (Sec 5, Appendix A.3).

The search minimises total communication: for a candidate assignment of a
partition dimension to every tensor and a partition-n-reduce strategy to every
operator, the cost of an operator is the number of bytes its workers must
fetch remotely (input regions not locally owned) plus the bytes moved to put
its output into the assigned layout (concatenation mismatch or output
reduction).

For every operator the model pre-computes, from its TDL access summary, the
per-worker input region sizes of every strategy.  Profiles are keyed by the
operator's *shape signature*, so the thousands of structurally identical
operators in a large model (e.g. the repeated residual blocks of WResNet-152)
share a single profile and evaluating an assignment reduces to a handful of
arithmetic operations — this is what keeps the DP and the recursive search
fast (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.graph.node import OpNode
from repro.graph.tensor import DTYPE_SIZES
from repro.interval.analysis import analyze_cached
from repro.interval.strategies import (
    bind_extents,
    discover_strategies,
    worker_input_elements,
)
from repro.ops.registry import get_op, num_elements


@dataclass
class StrategyProfile:
    """Pre-computed data for one (operator signature, strategy) pair.

    ``inputs`` holds one entry per operator input position:
    ``(position, dim that follows the axis or None, elements needed per
    worker, total elements, bytes per element)``.  ``outputs`` holds
    ``(position, total elements, bytes per element)`` per output.
    """

    axis: str
    kind: str  # "output" | "reduction"
    output_dim: Optional[int]
    inputs: List[Tuple[int, Optional[int], float, float, int]]
    outputs: List[Tuple[int, float, int]]


@dataclass
class NodeProfile:
    """All strategy profiles for one operator shape signature."""

    signature: Tuple
    parts: int
    strategies: List[StrategyProfile] = field(default_factory=list)


class CommunicationCostModel:
    """Evaluates the communication cost of partition assignments.

    Args:
        graph: The dataflow graph being partitioned.
        shapes: Current tensor shapes (defaults to the graph's shapes).  The
            recursive search passes progressively shrunk shapes at each step.
        allow_reduction: When ``False``, reduction-dimension strategies are
            dropped, reproducing the ICML18 baseline of Sec 7.3.
    """

    def __init__(
        self,
        graph: Graph,
        shapes: Optional[Mapping[str, Tuple[int, ...]]] = None,
        *,
        allow_reduction: bool = True,
    ) -> None:
        self.graph = graph
        self.allow_reduction = allow_reduction
        if shapes is None:
            shapes = {name: spec.shape for name, spec in graph.tensors.items()}
        self.shapes: Dict[str, Tuple[int, ...]] = dict(shapes)
        self._profiles: Dict[Tuple, NodeProfile] = {}
        self._node_profile: Dict[Tuple[str, int], NodeProfile] = {}
        self._node_cost_cache: Dict[Tuple, Tuple[str, float]] = {}

    # ----------------------------------------------------------- shapes API
    def set_shapes(self, shapes: Mapping[str, Tuple[int, ...]]) -> None:
        """Replace the working shapes (invalidates all cached profiles)."""
        self.shapes = dict(shapes)
        self._profiles.clear()
        self._node_profile.clear()
        self._node_cost_cache.clear()

    def tensor_bytes(self, tensor: str) -> float:
        spec = self.graph.tensor(tensor)
        return float(num_elements(self.shapes[tensor])) * DTYPE_SIZES[spec.dtype]

    def candidate_dims(self, tensor: str, parts: int, *, limit: int = 3) -> List[int]:
        """Dimensions along which ``tensor`` can sensibly be split.

        Only dimensions at least as large as ``parts`` qualify; when more than
        ``limit`` qualify, the largest ones are kept (splitting a tiny
        convolution-kernel dimension is never beneficial and only inflates the
        search space).
        """
        shape = self.shapes[tensor]
        if not shape:
            return [0]
        dims = [d for d, size in enumerate(shape) if size >= parts]
        if not dims:
            largest = max(range(len(shape)), key=lambda d: shape[d])
            dims = [largest]
        if len(dims) > limit:
            dims = sorted(sorted(dims, key=lambda d: shape[d], reverse=True)[:limit])
        return dims

    # -------------------------------------------------------------- profile
    def node_profile(self, node_name: str, parts: int) -> NodeProfile:
        key = (node_name, parts)
        profile = self._node_profile.get(key)
        if profile is not None:
            return profile
        node = self.graph.node(node_name)
        signature = self._signature(node, parts)
        profile = self._profiles.get(signature)
        if profile is None:
            profile = self._build_profile(node, signature, parts)
            self._profiles[signature] = profile
        self._node_profile[key] = profile
        return profile

    def _signature(self, node: OpNode, parts: int) -> Tuple:
        in_sig = tuple(
            (self.shapes[t], self.graph.tensor(t).dtype) for t in node.inputs
        )
        out_sig = tuple(
            (self.shapes[t], self.graph.tensor(t).dtype) for t in node.outputs
        )
        return (node.op, in_sig, out_sig, parts, self.allow_reduction)

    def _build_profile(self, node: OpNode, signature: Tuple, parts: int) -> NodeProfile:
        opdef = get_op(node.op)
        profile = NodeProfile(signature=signature, parts=parts)

        out_entries: List[Tuple[int, float, int]] = []
        for position, out in enumerate(node.outputs):
            spec = self.graph.tensor(out)
            out_entries.append(
                (position, float(num_elements(self.shapes[out])), DTYPE_SIZES[spec.dtype])
            )

        description = opdef.tdl
        output_shape = self.shapes[node.outputs[0]]
        use_tdl = (
            not opdef.elementwise
            and description is not None
            and len(output_shape) == len(description.output_vars)
        )
        if not use_tdl:
            profile.strategies = self._elementwise_profile(node, parts, out_entries)
            return profile

        summary = analyze_cached(description)
        input_shapes: Dict[str, Sequence[int]] = {}
        arg_of_position: List[Optional[str]] = []
        for position, tensor in enumerate(node.inputs):
            if position < len(description.input_names):
                arg = description.input_names[position]
                arg_of_position.append(arg)
                input_shapes[arg] = self.shapes[tensor]
            else:
                arg_of_position.append(None)

        extents = bind_extents(summary, output_shape, input_shapes)
        strategies = discover_strategies(
            description, allow_reduction=self.allow_reduction, summary=summary
        )

        for strategy in strategies:
            inputs: List[Tuple[int, Optional[int], float, float, int]] = []
            for position, tensor in enumerate(node.inputs):
                spec = self.graph.tensor(tensor)
                elem_size = DTYPE_SIZES[spec.dtype]
                arg = arg_of_position[position]
                total = float(num_elements(self.shapes[tensor]))
                if arg is None:
                    inputs.append((position, None, total, total, elem_size))
                    continue
                wanted_dim = strategy.input_dim(arg)
                needed = worker_input_elements(
                    summary, strategy, arg, self.shapes[tensor], extents, parts
                )
                inputs.append((position, wanted_dim, needed, total, elem_size))
            profile.strategies.append(
                StrategyProfile(
                    axis=strategy.axis,
                    kind=strategy.kind,
                    output_dim=strategy.output_dim,
                    inputs=inputs,
                    outputs=out_entries,
                )
            )
        return profile

    def _elementwise_profile(
        self, node: OpNode, parts: int, out_entries
    ) -> List[StrategyProfile]:
        """Strategies for element-wise (or undescribed) operators: one per
        output dimension, every same-shaped input following that dimension."""
        output_shape = self.shapes[node.outputs[0]]
        ndim = max(1, len(output_shape))
        strategies: List[StrategyProfile] = []
        for dim in range(ndim):
            inputs: List[Tuple[int, Optional[int], float, float, int]] = []
            for position, tensor in enumerate(node.inputs):
                spec = self.graph.tensor(tensor)
                shape = self.shapes[tensor]
                total = float(num_elements(shape))
                elem_size = DTYPE_SIZES[spec.dtype]
                if shape == output_shape:
                    inputs.append((position, dim, total / parts, total, elem_size))
                else:
                    # Shape mismatch (e.g. broadcast operand): the full tensor
                    # is needed by every worker.
                    inputs.append((position, None, total, total, elem_size))
            strategies.append(
                StrategyProfile(
                    axis=f"dim{dim}",
                    kind="output",
                    output_dim=dim,
                    inputs=inputs,
                    outputs=out_entries,
                )
            )
        return strategies

    # ----------------------------------------------------------------- cost
    def node_cost(
        self,
        node_name: str,
        tensor_dims: Mapping[str, int],
        parts: int,
    ) -> Tuple[str, float]:
        """Best strategy and its communication cost for one node.

        ``tensor_dims`` must assign a partition dimension to every tensor the
        node touches.  The returned cost is the total bytes communicated by
        the whole group of ``parts`` workers for this operator.
        """
        node = self.graph.node(node_name)
        key_dims = tuple(
            tensor_dims.get(t, 0) for t in node.inputs
        ) + tuple(tensor_dims.get(t, 0) for t in node.outputs)
        cache_key = (node_name, parts, key_dims)
        cached = self._node_cost_cache.get(cache_key)
        if cached is not None:
            return cached

        profile = self.node_profile(node_name, parts)
        in_dims = [tensor_dims.get(t, 0) for t in node.inputs]
        out_dims = [tensor_dims.get(t, 0) for t in node.outputs]
        best_axis = profile.strategies[0].axis
        best_cost = float("inf")
        for strategy in profile.strategies:
            fetch, redistribute = _strategy_cost(strategy, in_dims, out_dims, parts)
            cost = fetch + redistribute
            if cost < best_cost:
                best_cost = cost
                best_axis = strategy.axis
        result = (best_axis, best_cost)
        self._node_cost_cache[cache_key] = result
        return result

    def node_cost_detail(
        self,
        node_name: str,
        tensor_dims: Mapping[str, int],
        parts: int,
    ) -> Tuple[str, float, float]:
        """Like :meth:`node_cost` but splits the cost into input-fetch bytes
        and output-redistribution/reduction bytes (used by the partitioned
        graph generator to place reduction traffic)."""
        node = self.graph.node(node_name)
        profile = self.node_profile(node_name, parts)
        in_dims = [tensor_dims.get(t, 0) for t in node.inputs]
        out_dims = [tensor_dims.get(t, 0) for t in node.outputs]
        best: Optional[Tuple[str, float, float]] = None
        for strategy in profile.strategies:
            fetch, redistribute = _strategy_cost(strategy, in_dims, out_dims, parts)
            if best is None or fetch + redistribute < best[1] + best[2]:
                best = (strategy.axis, fetch, redistribute)
        assert best is not None
        return best

    def assignment_cost(
        self,
        tensor_dims: Mapping[str, int],
        parts: int,
        nodes: Optional[Sequence[str]] = None,
    ) -> Tuple[float, Dict[str, str]]:
        """Total cost of a full assignment and the per-node best strategies."""
        if nodes is None:
            nodes = list(self.graph.nodes)
        total = 0.0
        strategies: Dict[str, str] = {}
        for node_name in nodes:
            axis, cost = self.node_cost(node_name, tensor_dims, parts)
            strategies[node_name] = axis
            total += cost
        return total, strategies


def _strategy_cost(
    strategy: StrategyProfile,
    in_dims: Sequence[int],
    out_dims: Sequence[int],
    parts: int,
) -> Tuple[float, float]:
    """(input-fetch bytes, output-redistribution bytes) for one strategy."""
    fetch = 0.0
    redistribute = 0.0
    for position, wanted_dim, needed, total, elem_size in strategy.inputs:
        owned = total / parts
        assigned = in_dims[position] if position < len(in_dims) else 0
        if wanted_dim is not None and wanted_dim == assigned:
            overlap = min(needed, owned)
        else:
            overlap = needed / parts
        remote = needed - overlap
        if remote > 0.0:
            fetch += remote * elem_size * parts
    for position, total_elems, elem_size in strategy.outputs:
        assigned = out_dims[position] if position < len(out_dims) else 0
        if strategy.kind == "reduction":
            # Partial outputs of full size are reduce-scattered so each worker
            # ends up with its shard: (parts-1) * |O| bytes in total.
            redistribute += (parts - 1) * total_elems * elem_size
        elif strategy.output_dim is not None and strategy.output_dim != assigned:
            # Each worker produced a slice along the strategy dimension but
            # owns a slice along the assigned dimension.
            redistribute += total_elems * elem_size * (parts - 1) / parts
    return fetch, redistribute
