"""Partitioned-graph generation (Sec 6).

Given a :class:`PartitionPlan`, this module materialises the per-worker
execution: every operator becomes ``k`` sharded compute tasks (one per
device), remote input regions become fetch tasks, and output reductions become
reduce tasks.  The three optimisations of Sec 6 are modelled explicitly:

* **Control dependencies** keep the per-worker memory planner able to reuse
  buffers exactly as in the unpartitioned graph; disabling them makes the
  per-worker transient pool revert to no-reuse allocation.
* **Fused remote fetch (MultiFetch)** assembles remote regions in place with a
  single kernel; disabling it stages the regions through intermediate buffers
  (extra memory) and pays one extra launch per fetched input.
* **Spread-out reduction (all-reduce)** distributes output-reduction traffic
  over all workers; disabling it funnels the reduction through worker 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.node import OpNode
from repro.graph.tensor import TensorSpec
from repro.partition.cost import CommunicationCostModel
from repro.partition.plan import PartitionPlan
from repro.partition.recursive import _shrink_shapes
from repro.runtime.passes import (
    make_comm_task,
    make_compute_task,
    memory_plan_of,
    producer_deps,
    scheduled_nodes,
)
from repro.sim.device import Topology, as_cluster, k80_8gpu_machine
from repro.sim.engine import Task


@dataclass
class PartitionedGraph:
    """Everything the simulator needs to execute a partitioned training step."""

    num_devices: int
    tasks: Dict[str, Task]
    per_device_memory: Dict[int, int]
    total_comm_bytes: float
    fetch_bytes_per_node: Dict[str, float]
    reduce_bytes_per_node: Dict[str, float]
    sharded_graph: Graph
    plan: PartitionPlan

    @property
    def per_device_peak_bytes(self) -> int:
        return max(self.per_device_memory.values(), default=0)

    def summary(self) -> str:
        gib = 1 << 30
        return (
            f"PartitionedGraph(devices={self.num_devices}, tasks={len(self.tasks)}, "
            f"comm={self.total_comm_bytes / gib:.2f} GiB/iter, "
            f"per-device mem={self.per_device_peak_bytes / gib:.2f} GiB)"
        )


def build_sharded_graph(graph: Graph, plan: PartitionPlan) -> Graph:
    """A copy of ``graph`` whose tensors have per-worker shard shapes.

    This graph is what one worker holds locally; the memory planner runs on it
    to obtain the per-worker footprint (which should be roughly ``1/k`` of the
    original, Sec 5 "Optimization goal").
    """
    sharded = Graph(f"{graph.name}@shard")
    for name, spec in graph.tensors.items():
        sharded.add_tensor(
            TensorSpec(
                name=name,
                shape=plan.shard_shape(name, spec.shape),
                dtype=spec.dtype,
                kind=spec.kind,
            )
        )
    for node in graph.nodes.values():
        sharded.add_node(
            OpNode(
                name=node.name,
                op=node.op,
                inputs=list(node.inputs),
                outputs=list(node.outputs),
                attrs=dict(node.attrs),
            )
        )
    sharded.metadata.update(graph.metadata)
    return sharded


def per_node_communication(
    graph: Graph, plan: PartitionPlan
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Cluster-wide fetch and reduction bytes of every node under ``plan``."""
    fetch: Dict[str, float] = {name: 0.0 for name in graph.nodes}
    reduce_: Dict[str, float] = {name: 0.0 for name in graph.nodes}
    cost_model = CommunicationCostModel(graph)
    shapes = {name: spec.shape for name, spec in graph.tensors.items()}
    group_count = 1
    for step in plan.steps:
        cost_model.set_shapes(shapes)
        for node_name in graph.nodes:
            _, in_bytes, out_bytes = cost_model.node_cost_detail(
                node_name, step.tensor_dims, step.parts
            )
            fetch[node_name] += in_bytes * group_count
            reduce_[node_name] += out_bytes * group_count
        shapes = _shrink_shapes(shapes, step)
        group_count *= step.parts
    return fetch, reduce_


def generate_partitioned_graph(
    graph: Graph,
    plan: PartitionPlan,
    machine: Optional[Topology] = None,
    *,
    fuse_remote_fetch: bool = True,
    add_control_dependencies: bool = True,
    spread_reduction: bool = True,
) -> PartitionedGraph:
    """Generate the per-device task graph and memory estimate for ``plan``.

    ``machine`` may be a :class:`MachineSpec` or a multi-machine
    :class:`ClusterSpec`; on a cluster each device's fetch/reduce traffic is
    split into the share gathered from machine-local peers (the device's
    PCI-e link) and the share crossing machines (the device's machine NIC),
    since the partition shards tensors over *every* worker uniformly.
    """
    if machine is None:
        machine = k80_8gpu_machine(plan.num_workers)
    num_devices = plan.num_workers

    fetch_bytes, reduce_bytes = per_node_communication(graph, plan)
    total_comm = sum(fetch_bytes.values()) + sum(reduce_bytes.values())

    sharded = build_sharded_graph(graph, plan)
    memory_plan = memory_plan_of(sharded, allow_reuse=add_control_dependencies)

    # Communication buffers: the fused MultiFetch kernel assembles remote
    # regions in place (one staging buffer); the unfused path splits, copies
    # and concatenates, which needs roughly twice the staging memory and keeps
    # it alive longer (Sec 6).
    max_fetch_per_device = max(
        (fetch_bytes[n] + reduce_bytes[n]) / num_devices for n in graph.nodes
    ) if graph.nodes else 0.0
    staging_factor = 2.0 if fuse_remote_fetch else 5.0
    comm_buffer_bytes = int(staging_factor * max_fetch_per_device)

    per_device_memory = {
        d: memory_plan.peak_bytes + comm_buffer_bytes for d in range(num_devices)
    }

    tasks: Dict[str, Task] = {}
    scale = 1.0 / num_devices
    launch_penalty = 0.0 if fuse_remote_fetch else 3 * machine.kernel_launch_overhead

    topo = scheduled_nodes(graph)
    multi_machine = machine.num_machines > 1
    cluster = as_cluster(machine) if multi_machine else None
    for device in range(num_devices):
        device_spec = machine.device(device)
        remote_peer = None
        if multi_machine:
            # Shards are spread uniformly over all workers, so the share of a
            # device's traffic staying on its machine is the fraction of
            # workers that are machine-local peers.
            machine_index = cluster.machine_of(device)
            local_workers = sum(
                1
                for peer in cluster.devices_of_machine(machine_index)
                if peer < num_devices
            )
            local_fraction = local_workers / num_devices
            if local_workers < num_devices:
                # Any off-machine worker names the inter-machine edge the
                # remote share arrives over (this device's machine NIC).
                remote_peer = next(
                    d for d in range(num_devices)
                    if cluster.machine_of(d) != machine_index
                )
        else:
            local_fraction = 1.0
        for node in topo:
            name = node.name
            compute_name = f"{name}@{device}"
            deps: List[str] = []

            producers = producer_deps(graph, node)

            node_fetch = fetch_bytes[name] / num_devices
            node_reduce = reduce_bytes[name]
            if spread_reduction:
                node_reduce_dev = node_reduce / num_devices
            else:
                node_reduce_dev = node_reduce if device == 0 else 0.0

            comm_total = node_fetch + node_reduce_dev
            if comm_total > 0.0 and producers:
                # Remote regions come from every peer: the fetch waits for the
                # producers on all devices (a conservative synchronisation).
                fetch_deps = [f"{p}@{d}" for p in producers for d in range(num_devices)]
                fetch_name = f"{name}@{device}:fetch"
                local_bytes = comm_total * local_fraction
                if local_bytes > 0.0:
                    tasks[fetch_name] = make_comm_task(
                        fetch_name, device, local_bytes,
                        channel="p2p", deps=fetch_deps,
                    )
                    deps.append(fetch_name)
                remote_bytes = comm_total - local_bytes
                if remote_bytes > 0.0 and remote_peer is not None:
                    net_name = f"{name}@{device}:netfetch"
                    tasks[net_name] = make_comm_task(
                        net_name, device, remote_bytes, deps=fetch_deps,
                        topology=cluster, src=remote_peer, dst=device,
                    )
                    deps.append(net_name)
            deps.extend(f"{p}@{device}" for p in producers)

            tasks[compute_name] = make_compute_task(
                graph, name, device, device_spec, machine,
                deps=deps, scale=scale, extra_duration=launch_penalty,
                task_name=compute_name,
            )

    return PartitionedGraph(
        num_devices=num_devices,
        tasks=tasks,
        per_device_memory=per_device_memory,
        total_comm_bytes=total_comm,
        fetch_bytes_per_node=fetch_bytes,
        reduce_bytes_per_node=reduce_bytes,
        sharded_graph=sharded,
        plan=plan,
    )
