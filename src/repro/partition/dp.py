"""Dynamic-programming partition search over the coarsened graph (Sec 5).

``dp_partition_step`` finds the minimum-communication assignment of one
partition dimension per tensor (and one partition-n-reduce strategy per
operator) for a single recursive step that splits the graph across ``parts``
worker groups.  It is a *frontier* DP: operator groups are visited in
topological order and the DP state is the set of partition choices of the
tensor groups that cross the frontier between visited and unvisited groups.
For chain-like coarsened graphs (MLPs, CNNs, coalesced RNNs) the frontier is
tiny, which is what makes the search fast.

``joint_partition`` is the non-recursive variant used as the Table 1
comparison point: every tensor group chooses a full multi-step configuration
(a tuple of dimensions) at once, which blows up the per-group search space
exactly as the paper describes.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.coarsen import CoarsenedGraph, coarsen
from repro.partition.cost import CommunicationCostModel
from repro.partition.plan import PartitionPlan, StepAssignment, factorize_workers

Config = Tuple[int, ...]  # one dimension per step

#: Minimum (states x combos) expansions at one op group before the parallel
#: path engages; below it the thread handoff costs more than the work.
PARALLEL_MIN_EXPANSIONS = 64


class SearchBudgetExceeded(PartitionError):
    """Raised when ``joint_partition`` exceeds its time budget."""


# ---------------------------------------------------------------------------
# Shared frontier-DP machinery
# ---------------------------------------------------------------------------
class _FrontierDP:
    def __init__(
        self,
        graph: Graph,
        coarse: CoarsenedGraph,
        cost_model: CommunicationCostModel,
        *,
        parts_per_step: Sequence[int],
        max_states: int = 256,
        time_limit: Optional[float] = None,
        expand_jobs: int = 1,
    ) -> None:
        self.graph = graph
        self.coarse = coarse
        self.cost_model = cost_model
        self.parts_per_step = list(parts_per_step)
        self.num_steps = len(self.parts_per_step)
        self.max_states = max_states
        self.time_limit = time_limit
        self.expand_jobs = max(1, expand_jobs)
        self._start = time.time()
        self._group_cost_cache: Dict[Tuple, Tuple[float, Dict[str, Config]]] = {}

        self.first_toucher: Dict[int, int] = {}
        self.last_toucher: Dict[int, int] = {}
        for tg, touchers in coarse.touchers_of.items():
            self.first_toucher[tg] = min(touchers)
            self.last_toucher[tg] = max(touchers)

    # ------------------------------------------------------------ candidates
    def group_candidates(self, tg: int) -> List[Config]:
        """Candidate configurations for one tensor group."""
        members = self.coarse.tensor_group(tg).members
        per_step: List[List[int]] = []
        for parts in self.parts_per_step:
            dims: Optional[set] = None
            for member in members:
                cand = set(self.cost_model.candidate_dims(member, parts))
                dims = cand if dims is None else (dims & cand)
            if not dims:
                dims = {0}
            per_step.append(sorted(dims))
        return [tuple(c) for c in itertools.product(*per_step)]

    def _is_decision_group(self, tg: int) -> bool:
        group = self.coarse.tensor_group(tg)
        touchers = self.coarse.touchers_of.get(tg, [])
        return len(touchers) > 1 or group.persistent

    # ----------------------------------------------------------------- solve
    def solve(self) -> Tuple[float, Dict[str, Config], Dict[str, str]]:
        """Run the DP; returns (cost, per-tensor config, per-node strategy).

        With ``expand_jobs > 1`` the per-group state expansion fans contiguous
        chunks of the frontier across a thread pool.  The result is
        bit-identical to the serial walk: chunks preserve state order, the
        merge keeps an earlier chunk's entry on cost ties (exactly the serial
        ``total < best`` rule), and per-pair costs are single additions with
        no accumulation order to perturb.
        """
        op_groups = self.coarse.op_groups
        # states: frontier key -> (cost, state index)
        states: Dict[Tuple, float] = {(): 0.0}
        backptr: List[Dict[Tuple, Tuple[Tuple, Dict[int, Config]]]] = []
        pool = (
            ThreadPoolExecutor(max_workers=self.expand_jobs)
            if self.expand_jobs > 1
            else None
        )
        try:
            for group in op_groups:
                if (
                    self.time_limit is not None
                    and time.time() - self._start > self.time_limit
                ):
                    raise SearchBudgetExceeded(
                        f"partition search exceeded {self.time_limit:.0f}s budget"
                    )
                gid = group.gid
                touched = self.coarse.touched_by[gid]
                decision_tgs = [
                    tg
                    for tg in touched
                    if self.first_toucher[tg] == gid and self._is_decision_group(tg)
                ]
                internal_tgs = [
                    tg
                    for tg in touched
                    if self.first_toucher[tg] == gid
                    and not self._is_decision_group(tg)
                ]
                carried_tgs = [tg for tg in touched if self.first_toucher[tg] != gid]
                dropped = {tg for tg in touched if self.last_toucher[tg] == gid}

                candidates = {tg: self.group_candidates(tg) for tg in decision_tgs}
                combos = list(
                    itertools.product(*(candidates[tg] for tg in decision_tgs))
                )

                context = (
                    gid,
                    combos,
                    decision_tgs,
                    carried_tgs,
                    internal_tgs,
                    dropped,
                )
                if (
                    pool is not None
                    and len(states) > 1
                    and len(states) * max(1, len(combos)) >= PARALLEL_MIN_EXPANSIONS
                ):
                    new_states, pointers = self._expand_parallel(pool, states, context)
                else:
                    new_states, pointers = self._expand_chunk(
                        list(states.items()), context
                    )

                if not new_states:
                    raise PartitionError(f"DP produced no states at group {gid}")
                if len(new_states) > self.max_states:
                    kept = sorted(new_states.items(), key=lambda kv: kv[1])[
                        : self.max_states
                    ]
                    new_states = dict(kept)
                    pointers = {k: pointers[k] for k, _ in kept}
                states = new_states
                backptr.append(pointers)
        finally:
            if pool is not None:
                pool.shutdown(wait=False)

        # ------------------------------------------------------------ recover
        best_key = min(states, key=lambda k: states[k])
        best_cost = states[best_key]
        tg_config: Dict[int, Config] = {}
        key = best_key
        for pointers in reversed(backptr):
            prev_key, decided = pointers[key]
            for tg, cfg in decided.items():
                tg_config.setdefault(tg, cfg)
            key = prev_key

        tensor_config: Dict[str, Config] = {}
        for tg, cfg in tg_config.items():
            for member in self.coarse.tensor_group(tg).members:
                tensor_config[member] = self._clamp(member, cfg)
        # Tensors never decided (untouched by any node) default to dim 0.
        default = tuple([0] * self.num_steps)
        for tensor in self.graph.tensors:
            tensor_config.setdefault(tensor, self._clamp(tensor, default))

        strategies = self._final_strategies(tensor_config)
        return best_cost, tensor_config, strategies

    # ------------------------------------------------------------- expansion
    def _expand_chunk(
        self,
        chunk: Sequence[Tuple[Tuple, float]],
        context: Tuple,
    ) -> Tuple[Dict[Tuple, float], Dict[Tuple, Tuple[Tuple, Dict[int, Config]]]]:
        """Expand one ordered chunk of frontier states through one op group.

        Returns the chunk's best cost per next-frontier key plus the
        back-pointers, with keys in first-encounter order — the property the
        parallel merge needs to reproduce the serial walk exactly.
        """
        gid, combos, decision_tgs, carried_tgs, internal_tgs, dropped = context
        new_states: Dict[Tuple, float] = {}
        pointers: Dict[Tuple, Tuple[Tuple, Dict[int, Config]]] = {}
        for state_key, cost_so_far in chunk:
            frontier = dict(state_key)
            missing = [tg for tg in carried_tgs if tg not in frontier]
            if missing:
                # A carried tensor group must already be assigned; if not
                # (can only happen for exotic graphs) treat it as a
                # decision here.
                raise PartitionError(
                    f"tensor groups {missing} reached group {gid} unassigned"
                )
            for combo in combos:
                decided = dict(zip(decision_tgs, combo))
                local = {**{tg: frontier[tg] for tg in carried_tgs}, **decided}
                group_cost, internal_cfg = self._group_cost(gid, local, internal_tgs)
                total = cost_so_far + group_cost
                next_frontier = {
                    tg: cfg for tg, cfg in frontier.items() if tg not in dropped
                }
                for tg, cfg in decided.items():
                    if tg not in dropped:
                        next_frontier[tg] = cfg
                key = tuple(sorted(next_frontier.items()))
                if key not in new_states or total < new_states[key]:
                    new_states[key] = total
                    pointers[key] = (state_key, {**decided, **internal_cfg})
        return new_states, pointers

    def _expand_parallel(
        self,
        pool: ThreadPoolExecutor,
        states: Dict[Tuple, float],
        context: Tuple,
    ) -> Tuple[Dict[Tuple, float], Dict[Tuple, Tuple[Tuple, Dict[int, Config]]]]:
        """Fan contiguous state chunks across the pool and merge in order.

        The merge replaces an entry only on *strictly* lower cost, so on ties
        the earliest chunk — i.e. the earliest state in serial order — wins,
        and keys enter the merged dict in global first-encounter order.  Both
        invariants make the parallel expansion bit-identical to the serial
        one, including the stable ``max_states`` pruning sort downstream.
        The group-cost memo is shared across threads; whichever thread fills
        an entry first, the value is deterministic.
        """
        items = list(states.items())
        jobs = min(self.expand_jobs, len(items))
        step = (len(items) + jobs - 1) // jobs
        chunks = [items[i : i + step] for i in range(0, len(items), step)]
        results = pool.map(lambda chunk: self._expand_chunk(chunk, context), chunks)
        new_states: Dict[Tuple, float] = {}
        pointers: Dict[Tuple, Tuple[Tuple, Dict[int, Config]]] = {}
        for chunk_states, chunk_pointers in results:
            for key, total in chunk_states.items():
                if key not in new_states or total < new_states[key]:
                    new_states[key] = total
                    pointers[key] = chunk_pointers[key]
        return new_states, pointers

    # ------------------------------------------------------------ group cost
    def _group_cost(
        self, gid: int, local: Mapping[int, Config], internal_tgs: Sequence[int]
    ) -> Tuple[float, Dict[int, Config]]:
        cache_key = (gid, tuple(sorted(local.items())))
        cached = self._group_cost_cache.get(cache_key)
        if cached is not None:
            return cached

        # Reference configuration for internal temporaries: the largest
        # decided tensor group (typically the group's output activations).
        ref_cfg: Optional[Config] = None
        ref_size = -1.0
        for tg, cfg in local.items():
            size = sum(
                self.cost_model.tensor_bytes(m)
                for m in self.coarse.tensor_group(tg).members
            )
            if size > ref_size:
                ref_size = size
                ref_cfg = cfg
        if ref_cfg is None:
            ref_cfg = tuple([0] * self.num_steps)

        internal_cfg: Dict[int, Config] = {tg: ref_cfg for tg in internal_tgs}

        tensor_config: Dict[str, Config] = {}
        for tg, cfg in {**dict(local), **internal_cfg}.items():
            for member in self.coarse.tensor_group(tg).members:
                tensor_config[member] = self._clamp(member, cfg)

        total = 0.0
        members = self.coarse.op_group(gid).members
        for step, parts in enumerate(self.parts_per_step):
            step_dims = {t: cfg[step] for t, cfg in tensor_config.items()}
            for node_name in members:
                _, cost = self.cost_model.node_cost(node_name, step_dims, parts)
                total += cost
        result = (total, internal_cfg)
        self._group_cost_cache[cache_key] = result
        return result

    def _clamp(self, tensor: str, cfg: Config) -> Config:
        ndim = max(1, len(self.cost_model.shapes[tensor]))
        return tuple(min(d, ndim - 1) for d in cfg)

    def _final_strategies(self, tensor_config: Mapping[str, Config]) -> Dict[str, str]:
        strategies: Dict[str, str] = {}
        step_dims = {t: cfg[0] for t, cfg in tensor_config.items()}
        parts = self.parts_per_step[0]
        for node_name in self.graph.nodes:
            axis, _ = self.cost_model.node_cost(node_name, step_dims, parts)
            strategies[node_name] = axis
        return strategies


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------
def dp_partition_step(
    graph: Graph,
    coarse: CoarsenedGraph,
    cost_model: CommunicationCostModel,
    parts: int,
    *,
    max_states: int = 256,
    expand_jobs: int = 1,
) -> StepAssignment:
    """One recursive step: partition every tensor along one dimension across
    ``parts`` worker groups, minimising communication.

    ``expand_jobs > 1`` parallelises the frontier expansion across threads;
    the returned assignment is bit-identical to the serial search.
    """
    dp = _FrontierDP(
        graph,
        coarse,
        cost_model,
        parts_per_step=[parts],
        max_states=max_states,
        expand_jobs=expand_jobs,
    )
    cost, tensor_config, strategies = dp.solve()
    tensor_dims = {t: cfg[0] for t, cfg in tensor_config.items()}
    return StepAssignment(
        parts=parts,
        tensor_dims=tensor_dims,
        op_strategies=strategies,
        comm_bytes=cost,
        weighted_bytes=cost,
    )


def joint_partition(
    graph: Graph,
    num_workers: int,
    *,
    coarse: Optional[CoarsenedGraph] = None,
    cost_model: Optional[CommunicationCostModel] = None,
    allow_reduction: bool = True,
    max_states: int = 256,
    time_limit: Optional[float] = None,
    expand_jobs: int = 1,
) -> PartitionPlan:
    """Non-recursive search: choose all ``m`` partition dimensions per tensor
    jointly (the "DP with coarsening" row of Table 1).

    Exponentially slower than the recursive search; ``time_limit`` (seconds)
    raises :class:`SearchBudgetExceeded` when exceeded so benchmarks can report
    a lower bound instead of hanging.  ``expand_jobs > 1`` parallelises the
    frontier expansion (bit-identical plans).
    """
    start = time.time()
    factors = factorize_workers(num_workers)
    if coarse is None:
        coarse = coarsen(graph)
    if cost_model is None:
        cost_model = CommunicationCostModel(graph, allow_reduction=allow_reduction)
    dp = _FrontierDP(
        graph,
        coarse,
        cost_model,
        parts_per_step=factors,
        max_states=max_states,
        time_limit=time_limit,
        expand_jobs=expand_jobs,
    )
    cost, tensor_config, strategies = dp.solve()

    steps: List[StepAssignment] = []
    group_count = 1
    for i, parts in enumerate(factors):
        tensor_dims = {t: cfg[i] for t, cfg in tensor_config.items()}
        step_cost, step_strategies = cost_model.assignment_cost(tensor_dims, parts)
        steps.append(
            StepAssignment(
                parts=parts,
                tensor_dims=tensor_dims,
                op_strategies=step_strategies,
                comm_bytes=step_cost / group_count,
                weighted_bytes=step_cost,
                group_count=group_count,
            )
        )
        group_count *= parts
    plan = PartitionPlan(
        num_workers=num_workers,
        steps=steps,
        search_time_seconds=time.time() - start,
        algorithm="dp-joint",
    )
    return plan


def count_joint_configurations(
    coarse: CoarsenedGraph,
    cost_model: CommunicationCostModel,
    num_workers: int,
) -> Dict[str, float]:
    """Size of the non-recursive search space, for the Table 1 report."""
    factors = factorize_workers(num_workers)
    dp = _FrontierDP(coarse.graph, coarse, cost_model, parts_per_step=factors)
    per_group_max = 0.0
    total = 0.0
    for group in coarse.op_groups:
        gid = group.gid
        decision = [
            tg
            for tg in coarse.touched_by[gid]
            if dp.first_toucher[tg] == gid and dp._is_decision_group(tg)
        ]
        combos = 1.0
        for tg in decision:
            combos *= len(dp.group_candidates(tg))
        per_group_max = max(per_group_max, combos)
        total += combos
    return {
        "num_op_groups": float(len(coarse.op_groups)),
        "max_configs_per_group": per_group_max,
        "total_configs": total,
    }
