"""Tofu reproduction: automatic dataflow graph partitioning for very large DNNs.

Reproduction of "Supporting Very Large Models using Automatic Dataflow Graph
Partitioning" (Wang, Huang, Li — EuroSys 2019).  See README.md for a guided
tour and DESIGN.md for the system inventory.

The public surface is ``repro.compile(graph, strategy=..., machine=...)``
plus the :mod:`repro.strategy` combinator algebra (``machines``, ``dp``,
``pipeline``, ``tofu``, ``single``, ``placement``, ``swap``); ``machine``
accepts a single :class:`MachineSpec` or a hierarchical
:class:`ClusterSpec` (``cluster_of`` / ``topology_preset`` build them).
The :class:`Planner` and :class:`Executor` facades remain available for
callers that need the subsystems directly.
"""

import repro.ops  # noqa: F401  (registers the operator library on import)

from repro.api import (
    CompiledModel,
    SimulationReport,
    compile,
    describe_operator,
    partition_and_simulate,
    partition_graph,
)
from repro.compiler import compile_model
from repro.planner import (
    Planner,
    PlannerConfig,
    available_backends,
    default_planner,
    register_backend,
)
from repro.runtime import (
    Executor,
    ExecutorConfig,
    LoweredProgram,
    available_execution_backends,
    default_executor,
    register_execution_backend,
)
from repro.sim.device import (
    ClusterSpec,
    MachineSpec,
    cluster_of,
    topology_preset,
)
from repro.strategy import (
    Strategy,
    dp,
    machines,
    parse_strategy,
    pipeline,
    placement,
    single,
    swap,
    tofu,
)
from repro.errors import (
    AnalysisError,
    ExecutionError,
    GraphError,
    NoStrategyError,
    NonAffineError,
    OutOfMemoryError,
    PartitionError,
    ReproError,
    ShapeError,
    SimulationError,
    StrategyError,
    TDLError,
)

__version__ = "0.2.0"

__all__ = [
    "AnalysisError",
    "ClusterSpec",
    "CompiledModel",
    "ExecutionError",
    "Executor",
    "ExecutorConfig",
    "GraphError",
    "LoweredProgram",
    "MachineSpec",
    "NoStrategyError",
    "NonAffineError",
    "OutOfMemoryError",
    "PartitionError",
    "Planner",
    "PlannerConfig",
    "ReproError",
    "ShapeError",
    "SimulationError",
    "SimulationReport",
    "Strategy",
    "StrategyError",
    "TDLError",
    "__version__",
    "available_backends",
    "available_execution_backends",
    "cluster_of",
    "compile",
    "compile_model",
    "default_executor",
    "default_planner",
    "describe_operator",
    "dp",
    "machines",
    "parse_strategy",
    "partition_and_simulate",
    "partition_graph",
    "pipeline",
    "placement",
    "register_backend",
    "register_execution_backend",
    "single",
    "swap",
    "tofu",
    "topology_preset",
]
