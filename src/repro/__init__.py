"""Tofu reproduction: automatic dataflow graph partitioning for very large DNNs.

Reproduction of "Supporting Very Large Models using Automatic Dataflow Graph
Partitioning" (Wang, Huang, Li — EuroSys 2019).  See README.md for a guided
tour and DESIGN.md for the system inventory.
"""

import repro.ops  # noqa: F401  (registers the operator library on import)

from repro.api import (
    SimulationReport,
    describe_operator,
    partition_and_simulate,
    partition_graph,
)
from repro.planner import (
    Planner,
    PlannerConfig,
    available_backends,
    default_planner,
    register_backend,
)
from repro.runtime import (
    Executor,
    ExecutorConfig,
    LoweredProgram,
    available_execution_backends,
    default_executor,
    register_execution_backend,
)
from repro.errors import (
    ExecutionError,
    GraphError,
    NoStrategyError,
    NonAffineError,
    OutOfMemoryError,
    PartitionError,
    ReproError,
    ShapeError,
    SimulationError,
    TDLError,
)

__version__ = "0.1.0"

__all__ = [
    "ExecutionError",
    "Executor",
    "ExecutorConfig",
    "GraphError",
    "LoweredProgram",
    "NoStrategyError",
    "NonAffineError",
    "OutOfMemoryError",
    "PartitionError",
    "Planner",
    "PlannerConfig",
    "ReproError",
    "ShapeError",
    "SimulationError",
    "SimulationReport",
    "TDLError",
    "__version__",
    "available_backends",
    "available_execution_backends",
    "default_executor",
    "default_planner",
    "describe_operator",
    "partition_and_simulate",
    "partition_graph",
    "register_backend",
    "register_execution_backend",
]
