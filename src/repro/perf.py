"""Lightweight stage profiling for the two hot paths: lowering and simulation.

The planner search, every lowering pass, and the simulate loop report into a
:class:`StageTimer` when one is *active*; when none is, the instrumentation
collapses to a single thread-local load and branch, so the hot paths pay
nothing in the common case.  The active sink is per-thread, which is what
gives the compile service (:mod:`repro.serve`) isolated per-request stage
timings under concurrency.  Zero dependencies, stdlib only.

Activation is scoped and re-entrant::

    timer = StageTimer()
    with activation(timer):
        model = repro.compile(graph, "dp:2/tofu", machine)
    print(timer.summary())

``Executor`` (``ExecutorConfig(profile=True)``), ``repro.compile`` (which
surfaces the snapshot as ``CompiledModel.metadata["profile"]``) and the CLI
``--profile`` flag all build on this module.  Two kinds of measurements:

* **stages** — named wall-clock sections with call counts
  (``pass.topo_schedule``, ``lower.pipeline``, ``sim.run`` ...), recorded by
  :func:`stage` / :func:`timed`;
* **counters** — named value accumulators (``plan_cache.hit``,
  ``program_cache.miss``, ``sim.compiled_cache_hit`` ...), recorded by
  :func:`count`.

The warm-path acceptance check reads exactly this: a warm
``repro.compile()`` snapshot shows cache-hit counters and *no* ``pass.*`` or
``lower.*`` stages, proving every lowering pass was skipped.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

__all__ = [
    "StageTimer",
    "activation",
    "active_timer",
    "count",
    "stage",
    "timed",
]


class StageTimer:
    """Accumulates named stage timings and counters."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.counters: Dict[str, float] = {}

    # ---------------------------------------------------------------- record
    def record(self, name: str, seconds: float) -> None:
        """Add one timed call of stage ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` on counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    # --------------------------------------------------------------- queries
    def stage_calls(self, name: str) -> int:
        return self.calls.get(name, 0)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def stages_matching(self, prefix: str) -> Dict[str, int]:
        """``{stage: calls}`` of every stage whose name starts with ``prefix``."""
        return {
            name: calls
            for name, calls in self.calls.items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serialisable view: per-stage calls/seconds plus counters."""
        return {
            "stages": {
                name: {"calls": self.calls[name], "seconds": self.seconds[name]}
                for name in sorted(self.calls)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }

    def clear(self) -> None:
        self.seconds.clear()
        self.calls.clear()
        self.counters.clear()

    def summary(self) -> str:
        """Human-readable table (what ``--profile`` prints)."""
        lines = ["profile:"]
        if self.calls:
            width = max(len(name) for name in self.calls)
            for name in sorted(self.calls):
                lines.append(
                    f"  {name:<{width}}  {self.calls[name]:>6} call(s)  "
                    f"{self.seconds[name] * 1e3:>10.3f} ms"
                )
        if self.counters:
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                value = self.counters[name]
                text = f"{int(value)}" if value == int(value) else f"{value:.3f}"
                lines.append(f"  {name:<{width}}  {text:>6}")
        if len(lines) == 1:
            lines.append("  (no stages recorded)")
        return "\n".join(lines)


# The active sink is *per thread*: the compile service runs one request per
# worker thread, each under its own profiling executor, and a module-global
# sink would interleave their stages.  Thread-locality keeps every request's
# snapshot self-contained while single-threaded callers see the exact
# pre-existing behaviour.
_TLS = threading.local()


def active_timer() -> Optional[StageTimer]:
    """The timer this thread's instrumentation reports into (``None`` = off)."""
    return getattr(_TLS, "timer", None)


@contextmanager
def activation(timer: Optional[StageTimer]) -> Iterator[Optional[StageTimer]]:
    """Make ``timer`` the active profile sink for the duration of the block.

    ``None`` keeps whatever timer is already active (so a non-profiling
    ``Executor`` nested inside a profiling ``compile`` still reports to the
    outer timer); on exit the previous sink is restored.  Activation is
    per-thread: concurrent requests profiling in parallel never cross-talk.
    """
    previous = getattr(_TLS, "timer", None)
    if timer is not None:
        _TLS.timer = timer
    try:
        yield getattr(_TLS, "timer", None)
    finally:
        _TLS.timer = previous


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a section under ``name`` when a timer is active (no-op otherwise)."""
    timer = getattr(_TLS, "timer", None)
    if timer is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        timer.record(name, time.perf_counter() - start)


def count(name: str, value: float = 1.0) -> None:
    """Bump counter ``name`` on the active timer (no-op when none is)."""
    timer = getattr(_TLS, "timer", None)
    if timer is not None:
        timer.count(name, value)


def timed(name: str) -> Callable:
    """Decorator form of :func:`stage` for the lowering passes."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            timer = getattr(_TLS, "timer", None)
            if timer is None:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                timer.record(name, time.perf_counter() - start)

        return wrapper

    return decorate
