"""Multi-layer perceptron (Fig. 5's running example; used by tests/examples)."""

from __future__ import annotations

from typing import List

from repro.graph.autodiff import build_backward, build_optimizer
from repro.graph.builder import GraphBuilder
from repro.models.layers import ModelBundle, dense_layer


def build_mlp(
    *,
    batch_size: int = 64,
    input_dim: int = 1024,
    hidden_dim: int = 1024,
    num_layers: int = 3,
    num_classes: int = 1000,
    training: bool = True,
    optimizer: str = "adagrad",
) -> ModelBundle:
    """Build an MLP training (or inference) graph."""
    builder = GraphBuilder(f"mlp{num_layers}")
    weights: List[str] = []
    layer_of_node = {}

    data = builder.data("data", (batch_size, input_dim))
    labels = builder.input("labels", (batch_size,), kind="data")

    hidden = data
    in_features = input_dim
    for layer in range(num_layers):
        before = set(builder.graph.nodes)
        hidden = dense_layer(
            builder,
            hidden,
            in_features,
            hidden_dim,
            prefix=f"layer{layer}",
            weights=weights,
        )
        in_features = hidden_dim
        for node in builder.graph.nodes:
            if node not in before:
                layer_of_node[node] = layer
    before = set(builder.graph.nodes)
    logits = dense_layer(
        builder,
        hidden,
        in_features,
        num_classes,
        activation=None,
        prefix="classifier",
        weights=weights,
    )
    loss_vec = builder.apply("softmax_cross_entropy", [logits, labels], name="ce_loss")
    loss = builder.apply("reduce_mean_all", [loss_vec], name="loss")
    builder.mark_output(loss)
    for node in builder.graph.nodes:
        if node not in before:
            layer_of_node[node] = num_layers

    if training:
        build_backward(builder, loss, weights)
        build_optimizer(builder, weights, algorithm=optimizer)
    graph = builder.finish()
    graph.metadata["layer_of_node"] = layer_of_node

    return ModelBundle(
        graph=graph,
        weights=weights,
        loss=loss,
        batch_size=batch_size,
        name=f"MLP-{num_layers}x{hidden_dim}",
        layer_of_node=layer_of_node,
        hyperparams={
            "batch_size": batch_size,
            "input_dim": input_dim,
            "hidden_dim": hidden_dim,
            "num_layers": num_layers,
            "num_classes": num_classes,
        },
    )
