"""Wide ResNet models on ImageNet-sized inputs (Sec 7.1).

The paper evaluates WResNet-50/101/152 with widening scalars 4-10 on 224x224
images.  The architecture follows the original bottleneck ResNet (He et al.)
with every convolution's channel count multiplied by the widening scalar, so
the weight volume grows quadratically with the scalar — which is exactly what
makes these models exceed single-GPU memory (Table 2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.autodiff import build_backward, build_optimizer
from repro.graph.builder import GraphBuilder
from repro.models.layers import ModelBundle, conv_bn_relu

#: Residual blocks per stage for each supported depth (Fig. 11 describes the
#: 152-layer layout: 3, 8, 36, 3).
WRESNET_BLOCKS: Dict[int, List[int]] = {
    50: [3, 4, 6, 3],
    101: [3, 4, 23, 3],
    152: [3, 8, 36, 3],
}

#: Base (un-widened) bottleneck widths of the four stages.
STAGE_WIDTHS = [64, 128, 256, 512]
BOTTLENECK_EXPANSION = 4


def build_wide_resnet(
    *,
    depth: int = 50,
    widen: int = 4,
    batch_size: int = 32,
    image_size: int = 224,
    num_classes: int = 1000,
    training: bool = True,
    optimizer: str = "adagrad",
) -> ModelBundle:
    """Build a WResNet-{depth}-{widen} training graph.

    ``build_wide_resnet(depth=152, widen=10, batch_size=8)`` reproduces the
    largest model of the evaluation.
    """
    if depth not in WRESNET_BLOCKS:
        raise ValueError(f"unsupported WResNet depth {depth}; pick one of {sorted(WRESNET_BLOCKS)}")
    builder = GraphBuilder(f"wresnet{depth}_{widen}")
    weights: List[str] = []
    layer_of_node: Dict[str, int] = {}
    layer_index = 0

    def track(before: set) -> None:
        nonlocal layer_index
        for node in builder.graph.nodes:
            if node not in before:
                layer_of_node[node] = layer_index
        layer_index += 1

    data = builder.data("data", (batch_size, 3, image_size, image_size))
    labels = builder.input("labels", (batch_size,), kind="data")

    # Stem: 7x7 stride-2 convolution followed by a stride-2 max pool.
    before = set(builder.graph.nodes)
    stem_channels = 64 * widen
    out = conv_bn_relu(
        builder, data, 3, stem_channels, kernel=7, stride=2, prefix="stem", weights=weights
    )
    out = builder.apply(
        "max_pool2d", [out], name="stem_pool", attrs={"kernel": 3, "stride": 2, "pad": 1}
    )
    track(before)

    in_channels = stem_channels
    for stage, num_blocks in enumerate(WRESNET_BLOCKS[depth]):
        width = STAGE_WIDTHS[stage] * widen
        out_channels = width * BOTTLENECK_EXPANSION
        for block in range(num_blocks):
            before = set(builder.graph.nodes)
            stride = 2 if (block == 0 and stage > 0) else 1
            prefix = f"s{stage}b{block}"
            identity = out

            branch = conv_bn_relu(
                builder, out, in_channels, width, kernel=1, prefix=f"{prefix}_c1", weights=weights
            )
            branch = conv_bn_relu(
                builder, branch, width, width, kernel=3, stride=stride,
                prefix=f"{prefix}_c2", weights=weights,
            )
            branch = conv_bn_relu(
                builder, branch, width, out_channels, kernel=1, relu=False,
                prefix=f"{prefix}_c3", weights=weights,
            )
            if stride != 1 or in_channels != out_channels:
                identity = conv_bn_relu(
                    builder, out, in_channels, out_channels, kernel=1, stride=stride,
                    relu=False, prefix=f"{prefix}_proj", weights=weights,
                )
            out = builder.add(branch, identity, name=f"{prefix}_add")
            out = builder.relu(out, name=f"{prefix}_out")
            in_channels = out_channels
            track(before)

    before = set(builder.graph.nodes)
    pooled = builder.apply("global_avg_pool", [out], name="gap")
    fc_weight = builder.weight("fc_w", (in_channels, num_classes))
    fc_bias = builder.weight("fc_b", (num_classes,))
    weights.extend([fc_weight, fc_bias])
    logits = builder.matmul(pooled, fc_weight, name="fc")
    logits = builder.apply("bias_add", [logits, fc_bias], name="fc_bias")
    loss_vec = builder.apply("softmax_cross_entropy", [logits, labels], name="ce_loss")
    loss = builder.apply("reduce_mean_all", [loss_vec], name="loss")
    builder.mark_output(loss)
    track(before)

    if training:
        build_backward(builder, loss, weights)
        build_optimizer(builder, weights, algorithm=optimizer)
    graph = builder.finish()
    graph.metadata["layer_of_node"] = layer_of_node

    return ModelBundle(
        graph=graph,
        weights=weights,
        loss=loss,
        batch_size=batch_size,
        name=f"WResNet-{depth}-{widen}",
        layer_of_node=layer_of_node,
        hyperparams={
            "depth": depth,
            "widen": widen,
            "batch_size": batch_size,
            "image_size": image_size,
            "num_classes": num_classes,
        },
    )


def wresnet_weight_gib(depth: int, widen: int, *, multiplier: float = 3.0) -> float:
    """Analytic weight-memory footprint in GiB (weight + grad + history).

    Used by the Table 2 benchmark without having to build the (large) graph.
    """
    params = 0
    # Stem.
    stem_channels = 64 * widen
    params += 3 * stem_channels * 7 * 7 + 2 * stem_channels
    in_channels = stem_channels
    for stage, num_blocks in enumerate(WRESNET_BLOCKS[depth]):
        width = STAGE_WIDTHS[stage] * widen
        out_channels = width * BOTTLENECK_EXPANSION
        for block in range(num_blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            params += in_channels * width * 1 * 1 + 2 * width
            params += width * width * 3 * 3 + 2 * width
            params += width * out_channels * 1 * 1 + 2 * out_channels
            if stride != 1 or in_channels != out_channels:
                params += in_channels * out_channels + 2 * out_channels
            in_channels = out_channels
    params += in_channels * 1000 + 1000
    return multiplier * params * 4 / (1 << 30)
