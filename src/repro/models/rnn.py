"""Multi-layer LSTM recurrent networks (Sec 7.1).

The paper uses the large language-model RNN of Jozefowicz et al.: stacked LSTM
layers with hidden sizes 4K/6K/8K, unrolled for 20 timesteps.  The model
builder unrolls the cell explicitly — producing the fine-grained mesh-like
dataflow graph the paper discusses — and records which operator copies are
unrolled timesteps of the same computation so graph coarsening can coalesce
them (Sec 5.1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.autodiff import build_backward, build_optimizer
from repro.graph.builder import GraphBuilder
from repro.models.layers import ModelBundle, lstm_cell


def build_rnn(
    *,
    num_layers: int = 6,
    hidden_size: int = 4096,
    seq_len: int = 20,
    batch_size: int = 512,
    training: bool = True,
    optimizer: str = "adagrad",
) -> ModelBundle:
    """Build an RNN-{num_layers}-{hidden_size} training graph.

    The input sequence is assumed pre-embedded to ``hidden_size`` (the paper's
    weight accounting, Table 2, covers only the LSTM layer weights).
    """
    builder = GraphBuilder(f"rnn{num_layers}_{hidden_size}")
    weights: List[str] = []
    layer_of_node: Dict[str, int] = {}
    unroll_groups: Dict[str, List[str]] = {}

    inputs = [
        builder.data(f"x_t{t}", (batch_size, hidden_size)) for t in range(seq_len)
    ]

    layer_inputs = inputs
    for layer in range(num_layers):
        wx = builder.weight(f"l{layer}_wx", (hidden_size, 4 * hidden_size))
        wh = builder.weight(f"l{layer}_wh", (hidden_size, 4 * hidden_size))
        bias = builder.weight(f"l{layer}_bias", (4 * hidden_size,))
        weights.extend([wx, wh, bias])

        h_prev = builder.input(f"l{layer}_h0", (batch_size, hidden_size), kind="data")
        c_prev = builder.input(f"l{layer}_c0", (batch_size, hidden_size), kind="data")

        roles: Dict[str, List[str]] = {}
        outputs: List[str] = []
        for t, x in enumerate(layer_inputs):
            before = set(builder.graph.nodes)
            h_prev, c_prev = lstm_cell(
                builder,
                x,
                h_prev,
                c_prev,
                wx,
                wh,
                bias,
                hidden_size,
                prefix=f"l{layer}t{t}",
                roles=roles,
            )
            outputs.append(h_prev)
            for node in builder.graph.nodes:
                if node not in before:
                    layer_of_node[node] = layer
        for role, nodes in roles.items():
            unroll_groups[f"l{layer}_{role}"] = nodes
        layer_inputs = outputs

    # Training objective: a scalar summary of the final layer's last hidden
    # state (the paper's weight accounting excludes an output projection; see
    # EXPERIMENTS.md for the deviation note).
    final_hidden = layer_inputs[-1]
    loss = builder.apply("reduce_mean_all", [final_hidden], name="loss")
    builder.mark_output(loss)
    layer_of_node[loss] = num_layers - 1

    if training:
        build_backward(builder, loss, weights)
        build_optimizer(builder, weights, algorithm=optimizer)
    graph = builder.finish()
    graph.metadata["layer_of_node"] = layer_of_node
    graph.metadata["unroll_groups"] = list(unroll_groups.values())

    return ModelBundle(
        graph=graph,
        weights=weights,
        loss=loss,
        batch_size=batch_size,
        name=f"RNN-{num_layers}-{hidden_size // 1024}K",
        layer_of_node=layer_of_node,
        hyperparams={
            "num_layers": num_layers,
            "hidden_size": hidden_size,
            "seq_len": seq_len,
            "batch_size": batch_size,
        },
    )


def rnn_weight_gib(
    num_layers: int, hidden_size: int, *, multiplier: float = 3.0
) -> float:
    """Analytic weight-memory footprint in GiB (weight + grad + history)."""
    per_layer = 2 * hidden_size * 4 * hidden_size + 4 * hidden_size
    params = num_layers * per_layer
    return multiplier * params * 4 / (1 << 30)
