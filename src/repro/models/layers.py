"""Reusable layer builders and the :class:`ModelBundle` result type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


@dataclass
class ModelBundle:
    """A built training graph plus the metadata the rest of the system needs.

    Attributes:
        graph: The full training graph (forward + backward + optimiser).
        weights: Trainable tensor names.
        loss: Name of the scalar loss tensor.
        batch_size: Global mini-batch size the graph was built for.
        name: Human-readable model name (e.g. ``WResNet-152-10``).
        layer_of_node: Forward-node -> layer index (used by the
            operator-placement baseline); backward nodes inherit their forward
            node's layer through the autodiff metadata.
        hyperparams: The configuration used to build the model.
    """

    graph: Graph
    weights: List[str]
    loss: str
    batch_size: int
    name: str
    layer_of_node: Dict[str, int] = field(default_factory=dict)
    hyperparams: Dict[str, object] = field(default_factory=dict)

    def weight_bytes(self) -> int:
        return sum(self.graph.tensor(w).size_bytes() for w in self.weights)

    def weight_memory_bytes(self, multiplier: float = 3.0) -> float:
        """Weight + gradient + optimiser-history bytes (the paper's 3W rule)."""
        return multiplier * self.weight_bytes()


def conv_bn_relu(
    builder: GraphBuilder,
    data: str,
    in_channels: int,
    out_channels: int,
    *,
    kernel: int = 3,
    stride: int = 1,
    relu: bool = True,
    prefix: str = "conv",
    weights: Optional[List[str]] = None,
) -> str:
    """Convolution -> batch-norm -> (optional) ReLU, returning the output."""
    weight = builder.weight(f"{prefix}_w", (out_channels, in_channels, kernel, kernel))
    gamma = builder.weight(f"{prefix}_gamma", (out_channels,))
    beta = builder.weight(f"{prefix}_beta", (out_channels,))
    if weights is not None:
        weights.extend([weight, gamma, beta])
    out = builder.conv2d(data, weight, stride=stride, pad=kernel // 2, name=prefix)
    out = builder.apply("batch_norm", [out, gamma, beta], name=f"{prefix}_bn")
    if relu:
        out = builder.relu(out, name=f"{prefix}_relu")
    return out


def dense_layer(
    builder: GraphBuilder,
    data: str,
    in_features: int,
    out_features: int,
    *,
    activation: Optional[str] = "relu",
    prefix: str = "fc",
    weights: Optional[List[str]] = None,
) -> str:
    """Fully connected layer with bias and optional activation."""
    weight = builder.weight(f"{prefix}_w", (in_features, out_features))
    bias = builder.weight(f"{prefix}_b", (out_features,))
    if weights is not None:
        weights.extend([weight, bias])
    out = builder.matmul(data, weight, name=prefix)
    out = builder.apply("bias_add", [out, bias], name=f"{prefix}_bias")
    if activation:
        out = builder.apply(activation, [out], name=f"{prefix}_{activation}")
    return out


def lstm_cell(
    builder: GraphBuilder,
    x: str,
    h_prev: str,
    c_prev: str,
    wx: str,
    wh: str,
    bias: str,
    hidden: int,
    *,
    prefix: str,
    roles: Optional[Dict[str, List[str]]] = None,
) -> tuple:
    """One LSTM cell step built from fine-grained operators.

    The cell follows the standard formulation (Hochreiter & Schmidhuber):
    a single fused gate projection of size ``4*hidden`` followed by slicing
    into the input/forget/cell/output gates.  ``roles`` collects the node name
    of every operator keyed by its role so the model builder can record
    unrolled-timestep groups for graph coarsening (Sec 5.1).
    """

    def record(role: str, tensor: str) -> str:
        if roles is not None:
            roles.setdefault(role, []).append(tensor)
        return tensor

    gx = record("gates_x", builder.apply("matmul", [x, wx], name=f"{prefix}_gx"))
    gh = record("gates_h", builder.apply("matmul", [h_prev, wh], name=f"{prefix}_gh"))
    gates = record("gates_add", builder.add(gx, gh, name=f"{prefix}_gadd"))
    gates = record(
        "gates_bias", builder.apply("bias_add", [gates, bias], name=f"{prefix}_gbias")
    )

    def gate(index: int, role: str) -> str:
        begin = index * hidden
        return record(
            f"slice_{role}",
            builder.apply(
                "slice_axis1",
                [gates],
                name=f"{prefix}_{role}_slice",
                attrs={"begin": begin, "end": begin + hidden},
            ),
        )

    i_gate = record("sig_i", builder.sigmoid(gate(0, "i"), name=f"{prefix}_i"))
    f_gate = record("sig_f", builder.sigmoid(gate(1, "f"), name=f"{prefix}_f"))
    g_gate = record("tanh_g", builder.tanh(gate(2, "g"), name=f"{prefix}_g"))
    o_gate = record("sig_o", builder.sigmoid(gate(3, "o"), name=f"{prefix}_o"))

    fc = record("mul_fc", builder.multiply(f_gate, c_prev, name=f"{prefix}_fc"))
    ig = record("mul_ig", builder.multiply(i_gate, g_gate, name=f"{prefix}_ig"))
    c_new = record("add_c", builder.add(fc, ig, name=f"{prefix}_c"))
    c_tanh = record("tanh_c", builder.tanh(c_new, name=f"{prefix}_ct"))
    h_new = record("mul_h", builder.multiply(o_gate, c_tanh, name=f"{prefix}_h"))
    return h_new, c_new
