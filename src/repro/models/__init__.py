"""Model zoo: the DNN benchmarks of the paper's evaluation (Sec 7.1)."""

from repro.models.layers import ModelBundle, conv_bn_relu, dense_layer, lstm_cell
from repro.models.mlp import build_mlp
from repro.models.resnet import WRESNET_BLOCKS, build_wide_resnet, wresnet_weight_gib
from repro.models.rnn import build_rnn, rnn_weight_gib

__all__ = [
    "ModelBundle",
    "WRESNET_BLOCKS",
    "build_mlp",
    "build_rnn",
    "build_wide_resnet",
    "conv_bn_relu",
    "dense_layer",
    "lstm_cell",
    "rnn_weight_gib",
    "wresnet_weight_gib",
]
