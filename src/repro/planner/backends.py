"""Search-backend protocol and registry.

A *search backend* is a partition-search algorithm behind a uniform callable
interface: ``(graph, num_workers, **options) -> PartitionPlan``.  The registry
maps string keys to :class:`BackendSpec` entries so the :class:`Planner`
facade, the CLI (``--backend``) and the benchmarks can select any registered
algorithm — Tofu's recursive DP, the non-recursive joint DP of Table 1, and
the Figure 10 baselines — without hand-wiring imports.

Backends whose search decomposes into an ordered sequence of per-factor steps
(the recursive family) additionally expose ``factors_fn`` so the planner can
fan candidate worker factorisations across a process pool
(:mod:`repro.planner.parallel`).

Third-party search algorithms can also be registered through the
``repro.planner_backends`` ``importlib.metadata`` entry-point group; see
:func:`load_entry_point_backends`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence

from repro.baselines.partition_algos import (
    allrow_greedy_plan,
    equalchop_plan,
    spartan_plan,
)
from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.partition.dp import joint_partition
from repro.partition.plan import PartitionPlan
from repro.partition.recursive import recursive_partition
from repro.plugins import BackendRegistry, keyword_option_names


class SearchBackend(Protocol):
    """Structural type of a partition-search algorithm."""

    def __call__(
        self, graph: Graph, num_workers: int, **options: object
    ) -> PartitionPlan: ...


@dataclass(frozen=True)
class BackendSpec:
    """One registered search backend.

    Attributes:
        name: Registry key (what ``--backend`` and ``PlannerConfig`` select).
        fn: The search entry point.
        description: One-line summary shown by ``tofu-repro backends``.
        supports_factor_orders: Whether the backend's search is a sequence of
            per-factor recursive steps whose order is a degree of freedom.
        factors_fn: ``(graph, num_workers, factors, **options)`` variant used
            by the candidate search; required when ``supports_factor_orders``.
        option_names: Keyword options the backend accepts; the planner
            rejects anything else up front with a :class:`PartitionError`
            instead of letting a ``TypeError`` escape from deep inside a
            search (or a pool worker).  ``None`` skips validation (the
            backend accepts any options — used for entry-point callables
            taking ``**kwargs``).
    """

    name: str
    fn: SearchBackend
    description: str = ""
    supports_factor_orders: bool = False
    factors_fn: Optional[Callable[..., PartitionPlan]] = None
    option_names: Optional[Sequence[str]] = ()

    def validate_options(self, options: dict) -> None:
        """Reject unknown keyword options early (raises PartitionError)."""
        if self.option_names is None:
            return
        unknown = sorted(set(options) - set(self.option_names))
        if unknown:
            supported = ", ".join(sorted(self.option_names)) or "none"
            raise PartitionError(
                f"backend {self.name!r} does not accept option(s) {unknown} "
                f"(supported: {supported})"
            )

    def search(
        self,
        graph: Graph,
        num_workers: int,
        factors: Optional[Sequence[int]] = None,
        **options: object,
    ) -> PartitionPlan:
        """Run the backend, with an explicit factor order when supported."""
        if factors is not None and self.supports_factor_orders:
            assert self.factors_fn is not None
            return self.factors_fn(graph, num_workers, factors, **options)
        return self.fn(graph, num_workers, **options)


ENTRY_POINT_GROUP = "repro.planner_backends"


def _wrap_callable(name: str, fn: Callable) -> BackendSpec:
    """Spec for a bare search callable (entry-point plugin form): the
    accepted options come from the callable's own signature."""
    return BackendSpec(
        name=name,
        fn=fn,
        option_names=keyword_option_names(fn, skip=("graph", "num_workers")),
    )


_REGISTRY = BackendRegistry(
    kind="search",
    error_cls=PartitionError,
    entry_point_group=ENTRY_POINT_GROUP,
    spec_type=BackendSpec,
    make_spec=_wrap_callable,
)


def load_entry_point_backends(*, reload: bool = False) -> List[str]:
    """Register search backends advertised under the
    ``repro.planner_backends`` entry-point group; returns the names added."""
    return _REGISTRY.load_entry_points(reload=reload)


def register_backend(spec: BackendSpec, *, replace: bool = False) -> BackendSpec:
    """Register a backend; ``replace=True`` allows overriding an entry."""
    if spec.supports_factor_orders and spec.factors_fn is None:
        raise PartitionError(
            f"backend {spec.name!r} supports factor orders but has no factors_fn"
        )
    return _REGISTRY.register(spec, replace=replace)


def unregister_backend(name: str) -> None:
    """Remove a backend (used by tests registering temporary backends)."""
    _REGISTRY.unregister(name)


def get_backend(name: str) -> BackendSpec:
    """Resolve a backend by name; raises :class:`PartitionError` if unknown."""
    return _REGISTRY.get(name)


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return _REGISTRY.available()


# ---------------------------------------------------------------------------
# Built-in backends
# ---------------------------------------------------------------------------
def _tofu_factors(graph, num_workers, factors, **options):
    return recursive_partition(graph, num_workers, factors=factors, **options)


def _icml18(graph, num_workers, factors=None, **options):
    """ICML18: the recursive search with reduction strategies removed
    (equivalent to :func:`repro.baselines.partition_algos.icml18_plan`, but
    accepting the full recursive option set)."""
    plan = recursive_partition(
        graph, num_workers, factors=factors, allow_reduction=False, **options
    )
    plan.algorithm = "icml18"
    return plan


def _icml18_factors(graph, num_workers, factors, **options):
    return _icml18(graph, num_workers, factors=factors, **options)


_RECURSIVE_OPTIONS = (
    "coarse", "cost_model", "max_states", "coarsen_options", "expand_jobs",
)

register_backend(
    BackendSpec(
        name="tofu",
        fn=recursive_partition,
        description="recursive coarsen+DP search (Sec 5.2, the paper's system)",
        supports_factor_orders=True,
        factors_fn=_tofu_factors,
        option_names=_RECURSIVE_OPTIONS + ("allow_reduction",),
    )
)
register_backend(
    BackendSpec(
        name="joint",
        fn=joint_partition,
        description="non-recursive joint DP over all steps (Table 1 comparison)",
        option_names=("coarse", "cost_model", "max_states", "allow_reduction",
                      "time_limit", "expand_jobs"),
    )
)
register_backend(
    BackendSpec(
        name="icml18",
        fn=_icml18,
        description="recursive DP without output-reduction strategies (Jia et al.)",
        supports_factor_orders=True,
        factors_fn=_icml18_factors,
        option_names=_RECURSIVE_OPTIONS,
    )
)
register_backend(
    BackendSpec(
        name="equalchop",
        fn=equalchop_plan,
        description="single-step DP, one equal chop per tensor (Fig 10)",
        option_names=("coarse",),
    )
)
register_backend(
    BackendSpec(
        name="spartan",
        fn=spartan_plan,
        description="greedy largest-tensor-first tiling heuristic (Fig 10)",
    )
)
register_backend(
    BackendSpec(
        name="allrow-greedy",
        fn=allrow_greedy_plan,
        description="partition everything along dim 0, i.e. data parallelism (Fig 10)",
    )
)
