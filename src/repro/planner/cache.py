"""Content-addressed partition-plan cache.

Planning is the expensive part of the pipeline (Table 1: seconds to hours
depending on the algorithm), while the inputs that determine the answer are
small and hashable: the dataflow graph, the worker factorisation, the machine
model, and the backend configuration.  The cache keys plans by a SHA-256
digest over a canonical JSON encoding of exactly those four inputs, so
planning the same WResNet/RNN twice — in one process or across runs when an
on-disk store is configured — is a hit.

Two tiers:

* an in-memory LRU (``capacity`` entries, 0 disables it), and
* an optional on-disk JSON store (``cache_dir``), one file per key, built on
  the same serialisation helpers as :mod:`repro.graph.serialization`.  The
  disk tier accounts its size and, under a ``max_bytes`` budget, evicts the
  least-recently-used entries (hits refresh an entry's recency via its file
  mtime, so warm plans survive eviction sweeps).

Plans are stored as dictionaries (:func:`plan_to_dict`) and reconstructed on
every hit, so callers can freely mutate the returned plan without corrupting
the cache.
"""

from __future__ import annotations

import dataclasses
import glob
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.graph.serialization import graph_to_dict
from repro.partition.plan import PartitionPlan, plan_from_dict, plan_to_dict
from repro.sim.device import Topology


def graph_signature(graph: Graph) -> str:
    """Content hash of a graph (tensors, nodes, attrs, metadata)."""
    payload = json.dumps(graph_to_dict(graph), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def machine_signature(machine: Optional[Topology]) -> str:
    """Content hash of a machine or cluster model (``"no-machine"`` when
    unspecified) — a one-machine cluster and its bare machine hash
    differently, as do clusters differing only in machine count or network
    parameters."""
    if machine is None:
        return "no-machine"
    payload = json.dumps(
        dataclasses.asdict(machine), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def plan_cache_key(
    graph: Graph,
    factors: Sequence[int],
    machine: Optional[Topology],
    backend: str,
    backend_options: Mapping[str, object],
    *,
    explore_factor_orders: bool = True,
    strategy: Optional[object] = None,
) -> str:
    """The content address of one planning request.

    ``strategy`` is the full :class:`repro.strategy.Strategy` the plan is
    searched for (or its dict form), when the request came through
    ``repro.compile``.  Folding the whole tree into the key means two
    strategies that differ anywhere — replica-group count, stage count,
    schedule, micro-batches — can never collide on one cache entry, even
    when their ``tofu`` leaves would search identical plans.

    Raises ``TypeError`` when an input is not JSON-serialisable — e.g. a
    pre-built ``coarse=CoarsenedGraph`` backend option.  Such inputs have no
    stable content address (hashing their repr would embed memory addresses),
    so the planner bypasses the cache for those requests instead.
    """
    fields = {
        "graph": graph_signature(graph),
        "factors": list(factors),
        "machine": machine_signature(machine),
        "backend": backend,
        "options": backend_options,
        "explore_factor_orders": bool(explore_factor_orders),
    }
    if strategy is not None:
        # Only present for strategy-routed requests, so legacy callers (and
        # their pre-existing on-disk stores) keep their exact keys.
        to_dict = getattr(strategy, "to_dict", None)
        fields["strategy"] = to_dict() if callable(to_dict) else strategy
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


EXPORT_FORMAT = "tofu-plan-cache"
EXPORT_VERSION = 1


class PlanCache:
    """In-memory LRU over plan dictionaries, with an optional disk tier."""

    def __init__(
        self,
        capacity: int = 128,
        cache_dir: Optional[str] = None,
        *,
        max_bytes: Optional[int] = None,
    ):
        self.capacity = max(0, capacity)
        self.cache_dir = cache_dir
        self.max_bytes = max_bytes
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_evictions = 0
        if cache_dir:
            try:
                os.makedirs(cache_dir, exist_ok=True)
            except OSError as exc:
                raise ReproError(
                    f"plan cache directory {cache_dir!r} is not usable: {exc}"
                ) from exc

    @property
    def enabled(self) -> bool:
        return self.capacity > 0 or self.cache_dir is not None

    def __len__(self) -> int:
        return len(self._memory)

    def info(self) -> Dict[str, int]:
        info = {"hits": self.hits, "misses": self.misses, "size": len(self._memory)}
        if self.cache_dir:
            info["disk_bytes"] = self.disk_bytes()
            info["disk_entries"] = len(self._disk_entries())
            info["disk_evictions"] = self.disk_evictions
        return info

    def disk_bytes(self) -> int:
        """Total size of the on-disk store (0 without a disk tier)."""
        return sum(size for _, size, _ in self._disk_entries())

    # ------------------------------------------------------------------ get
    def get(self, key: str) -> Optional[PartitionPlan]:
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return plan_from_dict(payload)
        payload = self._disk_get(key)
        if payload is not None:
            self._memory_put(key, payload)
            self.hits += 1
            return plan_from_dict(payload)
        self.misses += 1
        return None

    # ------------------------------------------------------------------ put
    def put(self, key: str, plan: PartitionPlan) -> None:
        payload = plan_to_dict(plan)
        self._memory_put(key, payload)
        self._disk_put(key, payload)

    # --------------------------------------------------------- export/import
    def export_to(self, path: str) -> int:
        """Bundle every on-disk plan entry into one JSON file at ``path``.

        Content addresses are host-independent (graph × factorisation ×
        machine × backend config, all canonically encoded), so a bundle
        exported on one machine imports losslessly on another — the
        cross-machine cache sharing the planner's content addressing was
        designed for.  Returns the number of exported entries; requires a
        disk tier.
        """
        if not self.cache_dir:
            raise ReproError(
                "plan-cache export needs a disk tier (configure cache_dir)"
            )
        entries: Dict[str, Dict] = {}
        for file_path, _, _ in self._disk_entries():
            try:
                with open(file_path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
                entries[entry["key"]] = entry["plan"]
            except (OSError, ValueError, KeyError):
                continue  # unreadable/corrupt entries are skipped, not fatal
        bundle = {
            "format": EXPORT_FORMAT,
            "version": EXPORT_VERSION,
            "entries": entries,
        }
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh)
        os.replace(tmp, path)
        return len(entries)

    def import_from(self, path: str, *, replace: bool = False) -> Dict[str, int]:
        """Merge a bundle written by :meth:`export_to` into the disk store.

        Existing entries are kept unless ``replace=True`` (content addresses
        make key collisions equal-plan collisions, so keeping is safe).
        Returns ``{"imported": ..., "skipped": ...}``; requires a disk tier.
        """
        if not self.cache_dir:
            raise ReproError(
                "plan-cache import needs a disk tier (configure cache_dir)"
            )
        try:
            with open(path, "r", encoding="utf-8") as fh:
                bundle = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"plan-cache bundle {path!r} is not readable JSON: {exc}"
            ) from exc
        if bundle.get("format") != EXPORT_FORMAT:
            raise ReproError(
                f"{path!r} is not a {EXPORT_FORMAT} bundle "
                f"(format={bundle.get('format')!r})"
            )
        if bundle.get("version") != EXPORT_VERSION:
            raise ReproError(
                f"unsupported plan-cache bundle version "
                f"{bundle.get('version')!r} (this library reads version "
                f"{EXPORT_VERSION})"
            )
        imported = skipped = 0
        for key, payload in (bundle.get("entries") or {}).items():
            if not replace and os.path.exists(self._path(key)):
                skipped += 1
                continue
            self._disk_put(key, payload)
            imported += 1
        return {"imported": imported, "skipped": skipped}

    def clear(self) -> None:
        """Empty both tiers (memory and, when configured, the disk store)."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        self.disk_evictions = 0
        if self.cache_dir:
            for path in glob.glob(os.path.join(self.cache_dir, "*.json")):
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # ------------------------------------------------------------- internals
    def _memory_put(self, key: str, payload: Dict) -> None:
        if self.capacity <= 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _disk_get(self, key: str) -> Optional[Dict]:
        if not self.cache_dir:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            payload = entry["plan"]
        except (OSError, ValueError, KeyError):
            return None
        try:
            os.utime(path, None)  # refresh LRU recency on hit
        except OSError:
            pass
        return payload

    def _disk_put(self, key: str, payload: Dict) -> None:
        if not self.cache_dir:
            return
        entry = json.dumps({"key": key, "plan": payload})
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(entry)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._disk_enforce_budget(keep=self._path(key))

    def _disk_entries(self):
        """``(path, size, mtime)`` of every stored plan file."""
        if not self.cache_dir:
            return []
        entries = []
        for path in glob.glob(os.path.join(self.cache_dir, "*.json")):
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((path, stat.st_size, stat.st_mtime))
        return entries

    def _disk_enforce_budget(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used files until the store fits ``max_bytes``.

        ``keep`` protects the entry just written: even when one plan alone
        exceeds the budget the caller's own plan must survive the sweep, so
        hit-after-put stays guaranteed within a process.
        """
        if self.max_bytes is None or not self.cache_dir:
            return
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        entries.sort(key=lambda item: item[2])  # oldest mtime first
        for path, size, _ in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and os.path.abspath(path) == os.path.abspath(keep):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.disk_evictions += 1
