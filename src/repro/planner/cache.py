"""Content-addressed partition-plan cache.

Planning is the expensive part of the pipeline (Table 1: seconds to hours
depending on the algorithm), while the inputs that determine the answer are
small and hashable: the dataflow graph, the worker factorisation, the machine
model, and the backend configuration.  The cache keys plans by a SHA-256
digest over a canonical JSON encoding of exactly those four inputs, so
planning the same WResNet/RNN twice — in one process or across runs when an
on-disk store is configured — is a hit.

The two-tier machinery (in-memory LRU + on-disk JSON store with size
accounting, LRU eviction under a byte budget, and ``export``/``import``
bundles) is shared with the lowered-program cache — see
:class:`repro.caching.TwoTierCache`; this module adds the plan payload codec
and the plan key scheme.

Plans are stored as dictionaries (:func:`plan_to_dict`) and reconstructed on
every hit, so callers can freely mutate the returned plan without corrupting
the cache.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.caching import (
    TwoTierCache,
    content_key,
    graph_signature,
    machine_signature,
)
from repro.graph.graph import Graph
from repro.partition.plan import PartitionPlan, plan_from_dict, plan_to_dict
from repro.sim.device import Topology

__all__ = [
    "KEY_COVERED_CONFIG_FIELDS",
    "NON_SEMANTIC_CONFIG_FIELDS",
    "NON_SEMANTIC_OPTIONS",
    "PlanCache",
    "graph_signature",
    "machine_signature",
    "plan_cache_key",
]

#: PlannerConfig fields whose values feed :func:`plan_cache_key` (the
#: ``backend``/``options``/``explore_factor_orders``/``cost_model`` payload
#: entries).  Together with NON_SEMANTIC_CONFIG_FIELDS this must classify
#: *every* config field — the ``cache-key`` checker (repro.analysis) fails
#: the build otherwise, so a new semantic knob cannot silently poison warm
#: cache entries.
KEY_COVERED_CONFIG_FIELDS = (
    "backend",
    "backend_options",
    "explore_factor_orders",
    "cost_model",
)

#: PlannerConfig fields that deliberately do NOT contribute to plan cache
#: keys: parallelism and cache plumbing that never change which plan a
#: search returns (parallel expansion is pinned bit-identical to serial).
NON_SEMANTIC_CONFIG_FIELDS = (
    "jobs",
    "expand_jobs",
    "cache_capacity",
    "cache_dir",
    "cache_max_bytes",
)

#: Backend options that change only how fast a search runs, never which plan
#: it returns (parallel expansion is pinned bit-identical to serial).  They
#: are excluded from the content address so a plan searched with
#: ``expand_jobs=4`` is a cache hit for a serial request and vice versa —
#: mirroring how ``PlannerConfig.jobs`` never enters the key.
NON_SEMANTIC_OPTIONS = ("expand_jobs",)


def plan_cache_key(
    graph: Graph,
    factors: Sequence[int],
    machine: Optional[Topology],
    backend: str,
    backend_options: Mapping[str, object],
    *,
    explore_factor_orders: bool = True,
    strategy: Optional[object] = None,
    cost_model: Optional[str] = None,
) -> str:
    """The content address of one planning request.

    ``strategy`` is the full :class:`repro.strategy.Strategy` the plan is
    searched for (or its dict form), when the request came through
    ``repro.compile``.  Folding the whole tree into the key means two
    strategies that differ anywhere — replica-group count, stage count,
    schedule, micro-batches — can never collide on one cache entry, even
    when their ``tofu`` leaves would search identical plans.

    ``cost_model`` is the pricing model's cache token
    (:func:`repro.costmodel.cost_model_cache_token`): ``None`` under the
    default roofline — the field is then absent, preserving every
    pre-cost-model key — and the model's content signature otherwise.

    Raises ``TypeError`` when an input is not JSON-serialisable — e.g. a
    pre-built ``coarse=CoarsenedGraph`` backend option.  Such inputs have no
    stable content address (hashing their repr would embed memory addresses),
    so the planner bypasses the cache for those requests instead.
    """
    fields = {
        "graph": graph_signature(graph),
        "factors": list(factors),
        "machine": machine_signature(machine),
        "backend": backend,
        "options": {
            name: value
            for name, value in backend_options.items()
            if name not in NON_SEMANTIC_OPTIONS
        },
        "explore_factor_orders": bool(explore_factor_orders),
    }
    if strategy is not None:
        # Only present for strategy-routed requests, so legacy callers (and
        # their pre-existing on-disk stores) keep their exact keys.
        to_dict = getattr(strategy, "to_dict", None)
        fields["strategy"] = to_dict() if callable(to_dict) else strategy
    if cost_model is not None:
        fields["cost_model"] = cost_model
    return content_key(fields)


EXPORT_FORMAT = "tofu-plan-cache"
EXPORT_VERSION = 1


class PlanCache(TwoTierCache):
    """In-memory LRU over plan dictionaries, with an optional disk tier."""

    export_format = EXPORT_FORMAT
    export_version = EXPORT_VERSION
    payload_field = "plan"
    description = "plan cache"

    # ------------------------------------------------------------------ get
    def get(self, key: str) -> Optional[PartitionPlan]:
        """The cached plan under ``key``, or ``None`` on a miss."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        return plan_from_dict(payload)

    # ------------------------------------------------------------------ put
    def put(self, key: str, plan: PartitionPlan) -> None:
        """Store ``plan`` under ``key`` in every enabled tier."""
        self.put_payload(key, plan_to_dict(plan))
