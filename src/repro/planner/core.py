"""The :class:`Planner` facade — one entry point for the whole pipeline.

``Planner`` owns the end-to-end flow the paper describes: take a built
training graph (already carrying autodiff metadata), coarsen it, search a
partition plan with a pluggable backend, and optionally apply the plan and
simulate the per-device execution.  Around the search it adds the two things
a production planner needs:

* a content-addressed plan cache (:mod:`repro.planner.cache`) keyed by
  (graph signature, worker factorisation, machine spec, backend config), and
* parallel candidate search (:mod:`repro.planner.parallel`) fanning
  alternative worker factorisations across a process pool.

``repro.api`` keeps its original ``partition_graph`` / ``partition_and_simulate``
signatures as thin shims over a process-wide default planner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro import perf
from repro.graph.graph import Graph
from repro.partition.plan import PartitionPlan, factorize_workers
from repro.planner.backends import get_backend
from repro.planner.cache import PlanCache, plan_cache_key
from repro.planner.parallel import candidate_factorizations, search_candidates
from repro.runtime.core import Executor, SimulationReport
from repro.sim.device import Topology, k80_8gpu_machine

__all__ = [
    "Planner",
    "PlannerConfig",
    "SimulationReport",
    "default_planner",
]


@dataclass(frozen=True)
class PlannerConfig:
    """Configuration of a :class:`Planner`.

    Attributes:
        backend: Default search backend (a :func:`repro.planner.backends`
            registry key); overridable per ``plan()`` call.
        backend_options: Default keyword options forwarded to the backend.
        jobs: Process-pool size for the candidate search (1 = in-process).
            Does not affect the plan found, only wall-clock time, so it is
            deliberately excluded from the cache key.
        expand_jobs: Threads for the frontier-DP state expansion *inside* one
            search (1 = serial) — the intra-search parallelism the compile
            service uses so a single large request cannot monopolise a
            worker.  Parallel expansion is bit-identical to serial, so it is
            likewise excluded from the cache key.
        explore_factor_orders: For backends that support it, search every
            distinct ordering of the worker factorisation instead of only the
            descending-prime order (a no-op for power-of-two worker counts).
        cache_capacity: In-memory LRU size; 0 disables the memory tier.
        cache_dir: Optional directory for the persistent plan store.
        cache_max_bytes: Byte budget for the on-disk store; when the stored
            plans exceed it the least-recently-used entries are evicted.
            ``None`` means unbounded.
        cost_model: Pricing model the search costs candidate plans under —
            same spellings as ``ExecutorConfig.cost_model``.  The default
            ``"roofline"`` keeps the built-in arithmetic (deferring to any
            model activated via ``repro.costmodel.use_cost_model``); a
            non-default model folds its signature into plan-cache keys.
    """

    backend: str = "tofu"
    backend_options: Mapping[str, object] = field(default_factory=dict)
    jobs: int = 1
    expand_jobs: int = 1
    explore_factor_orders: bool = True
    cache_capacity: int = 128
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    cost_model: object = "roofline"


class Planner:
    """Facade over search backends, the plan cache, and the simulator."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        *,
        cache: Optional[PlanCache] = None,
    ):
        self.config = config or PlannerConfig()
        self.cache = cache or PlanCache(
            capacity=self.config.cache_capacity,
            cache_dir=self.config.cache_dir,
            max_bytes=self.config.cache_max_bytes,
        )

    # ------------------------------------------------------------------ plan
    def plan(
        self,
        graph: Graph,
        num_workers: int,
        *,
        machine: Optional[Topology] = None,
        backend: Optional[str] = None,
        backend_options: Optional[Mapping[str, object]] = None,
        strategy: Optional[object] = None,
    ) -> PartitionPlan:
        """Search (or recall) a partition plan for ``num_workers`` workers.

        The result for a given (graph, worker factorisation, machine,
        backend config) is cached; a second call with equal inputs returns an
        equal plan without re-running the search.  ``machine`` is part of the
        cache key even though the built-in backends are machine-agnostic (a
        cost-model-aware backend need not be), so pass the same value to
        ``plan`` and ``plan_and_simulate`` to share entries between them.
        ``strategy`` — the full :class:`repro.strategy.Strategy` when the
        request came through ``repro.compile`` — is folded into the cache key
        so differently-composed strategies never collide on one entry.
        Requests whose backend options are not JSON-serialisable (e.g. a
        pre-built ``coarse`` graph) have no stable content address and bypass
        the cache entirely.

        Candidate costing runs under the configured cost model
        (``config.cost_model``); a non-default model's signature joins the
        cache key so plans searched under different pricings never collide.

        Raises:
            PartitionError: When the backend cannot produce a plan for the
                requested worker count.
            CostModelError: When ``config.cost_model`` cannot be resolved.
        """
        from repro.costmodel import (
            active_cost_model,
            configured_cost_model,
            cost_model_cache_token,
            use_cost_model,
        )

        spec = get_backend(backend or self.config.backend)
        options = {**self.config.backend_options, **(backend_options or {})}
        if (
            self.config.expand_jobs > 1
            and "expand_jobs" not in options
            and spec.option_names is not None
            and "expand_jobs" in spec.option_names
        ):
            options["expand_jobs"] = self.config.expand_jobs
        spec.validate_options(options)
        factors = factorize_workers(num_workers)
        explore = spec.supports_factor_orders and self.config.explore_factor_orders

        config_model = configured_cost_model(self.config.cost_model)
        effective_model = (
            config_model if config_model is not None else active_cost_model()
        )
        token = cost_model_cache_token(effective_model)

        key = None
        if self.cache.enabled:
            try:
                key = plan_cache_key(
                    graph, factors, machine, spec.name, options,
                    explore_factor_orders=explore,
                    strategy=strategy,
                    cost_model=token,
                )
            except TypeError:
                key = None
            else:
                cached = self.cache.get(key)
                if cached is not None:
                    perf.count("plan_cache.hit")
                    return cached
                perf.count("plan_cache.miss")

        with perf.stage(f"planner.search.{spec.name}"), use_cost_model(config_model):
            plan = self._search(spec, graph, num_workers, options)
        if key is not None:
            self.cache.put(key, plan)
        return plan

    def _search(self, spec, graph, num_workers, options) -> PartitionPlan:
        if not (spec.supports_factor_orders and self.config.explore_factor_orders):
            return spec.search(graph, num_workers, **options)
        candidates = candidate_factorizations(num_workers)
        if len(candidates) == 1:
            return spec.search(graph, num_workers, factors=candidates[0], **options)
        start = time.time()
        plan = search_candidates(
            spec, graph, num_workers, candidates, options, jobs=self.config.jobs
        )
        plan.search_time_seconds = time.time() - start
        return plan

    # ------------------------------------------------------------- simulate
    def plan_and_simulate(
        self,
        graph: Graph,
        num_workers: int = 8,
        machine: Optional[Topology] = None,
        *,
        plan: Optional[PartitionPlan] = None,
        backend: Optional[str] = None,
        backend_options: Optional[Mapping[str, object]] = None,
        fuse_remote_fetch: bool = True,
        add_control_dependencies: bool = True,
        spread_reduction: bool = True,
    ) -> SimulationReport:
        """Plan ``graph``, then lower and simulate it through the
        :class:`repro.runtime.Executor` (``tofu-partitioned`` backend)."""
        machine = machine or k80_8gpu_machine(num_workers)
        if plan is None:
            plan = self.plan(
                graph,
                num_workers,
                machine=machine,
                backend=backend,
                backend_options=backend_options,
            )
        return Executor().run(
            graph,
            plan=plan,
            machine=machine,
            backend="tofu-partitioned",
            backend_options={
                "fuse_remote_fetch": fuse_remote_fetch,
                "add_control_dependencies": add_control_dependencies,
                "spread_reduction": spread_reduction,
            },
        )

    # ------------------------------------------------------------ utilities
    def cache_info(self) -> Dict[str, int]:
        """``{"hits": ..., "misses": ..., "size": ...}`` for this planner."""
        return self.cache.info()

    def clear_cache(self) -> None:
        """Drop every cached plan (memory tier and disk tier)."""
        self.cache.clear()


_DEFAULT_PLANNER: Optional[Planner] = None


def default_planner() -> Planner:
    """The process-wide planner behind the ``repro.api`` shims.

    Sharing one planner (and thus one cache) means every caller of the legacy
    API benefits from memoised plans automatically.
    """
    global _DEFAULT_PLANNER
    if _DEFAULT_PLANNER is None:
        _DEFAULT_PLANNER = Planner()
    return _DEFAULT_PLANNER
