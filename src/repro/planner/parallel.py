"""Parallel candidate search over worker factorisations.

The recursive search partitions for ``k = k1 * ... * km`` workers one factor
at a time; the *order* of the factors is a degree of freedom (Sec 5.2 fixes
it to descending primes, which Theorem 3 shows is optimal under the paper's
linearity assumptions, but halo terms in CNNs bend those assumptions).  Each
candidate order is an independent end-to-end search, so the planner fans them
across a ``multiprocessing`` pool and keeps the cheapest plan.

The steps *within* one candidate stay sequential — step ``i+1`` partitions
the shapes shrunk by step ``i`` — so candidates, not steps, are the unit of
parallelism.  Ties are broken by candidate index, which makes the serial and
parallel paths return bit-identical plans.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.partition.plan import PartitionPlan, factorize_workers
from repro.planner.backends import BackendSpec

Factors = Tuple[int, ...]

_MAX_CANDIDATES = 24

# Environment override for the pool start method, so spawn-only behaviour
# (macOS/Windows default, and what CI exercises explicitly) can be forced on
# fork platforms too.
START_METHOD_ENV = "TOFU_MP_START_METHOD"


def mp_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every repro process pool runs under.

    Defaults to ``fork`` where available (cheapest start, inherits warm
    state) and ``spawn`` otherwise.  The ``TOFU_MP_START_METHOD``
    environment variable overrides the choice (``fork`` / ``spawn`` /
    ``forkserver``); an override naming a method the platform does not
    support raises :class:`repro.errors.ReproError` instead of silently
    falling back.  The planner's candidate search and the autotuner's
    evaluation pool share this one decision.
    """
    methods = multiprocessing.get_all_start_methods()
    override = os.environ.get(START_METHOD_ENV, "").strip()
    if override:
        if override not in methods:
            raise ReproError(
                f"{START_METHOD_ENV}={override!r} is not a start method this "
                f"platform supports (available: {', '.join(methods)})"
            )
        return multiprocessing.get_context(override)
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def candidate_factorizations(
    num_workers: int, limit: int = _MAX_CANDIDATES
) -> List[Factors]:
    """Distinct orderings of the prime factorisation of ``num_workers``.

    The descending-prime order (the paper's choice) is always first, so a
    single-candidate search degenerates to the paper's algorithm exactly.
    Powers of two — every machine in the evaluation — have exactly one
    candidate; the cap guards against pathological worker counts.

    Enumeration is over the *multiset* of prime factors (not raw
    permutations), so repeated factors — 2^11 workers has one distinct
    order, not 11! duplicates — cost nothing.
    """
    base = factorize_workers(num_workers)
    remaining = Counter(base)
    values = sorted(remaining, reverse=True)
    out: List[Factors] = []
    prefix: List[int] = []

    def backtrack() -> None:
        if len(out) >= limit:
            return
        if len(prefix) == len(base):
            out.append(tuple(prefix))
            return
        for value in values:
            if not remaining[value]:
                continue
            remaining[value] -= 1
            prefix.append(value)
            backtrack()
            prefix.pop()
            remaining[value] += 1

    backtrack()
    return out or [()]


# Worker-process state, installed once per pool worker by the initializer so
# the (potentially large) graph is not re-pickled for every candidate.  The
# BackendSpec itself is shipped (not its registry name): on spawn-start
# platforms the worker re-imports only the built-in registry, so a
# runtime-registered backend would not resolve by name there.
_STATE: Optional[Tuple] = None


def _init_worker(graph, spec, num_workers, options) -> None:
    global _STATE
    _STATE = (graph, spec, num_workers, options)


def _run_candidate(factors: Factors) -> PartitionPlan:
    graph, spec, num_workers, options = _STATE
    return spec.search(graph, num_workers, factors=factors, **options)


def search_candidates(
    spec: BackendSpec,
    graph,
    num_workers: int,
    candidates: Sequence[Factors],
    options: Mapping[str, object],
    jobs: int = 1,
) -> PartitionPlan:
    """Evaluate every candidate factor order and return the cheapest plan.

    ``jobs > 1`` distributes candidates over a process pool; the result is
    identical to the serial evaluation (same candidates, same tie-break).
    """
    options = dict(options)
    jobs = min(jobs, len(candidates))
    if jobs > 1:
        ctx = mp_context()
        with ctx.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(graph, spec, num_workers, options),
        ) as pool:
            plans = pool.map(_run_candidate, list(candidates))
    else:
        plans = [
            spec.search(graph, num_workers, factors=factors, **options)
            for factors in candidates
        ]
    best = min(
        range(len(plans)), key=lambda i: (plans[i].total_comm_bytes, i)
    )
    return plans[best]
