"""Unified planner subsystem.

One pipeline — build → autodiff → coarsen → search → plan → apply → simulate —
behind the :class:`Planner` facade, with pluggable search backends
(:mod:`repro.planner.backends`), a content-addressed plan cache
(:mod:`repro.planner.cache`) and parallel candidate search
(:mod:`repro.planner.parallel`).
"""

from repro.planner.backends import (
    BackendSpec,
    SearchBackend,
    available_backends,
    get_backend,
    load_entry_point_backends,
    register_backend,
    unregister_backend,
)
from repro.planner.cache import (
    PlanCache,
    graph_signature,
    machine_signature,
    plan_cache_key,
)
from repro.planner.core import (
    Planner,
    PlannerConfig,
    SimulationReport,
    default_planner,
)
from repro.planner.parallel import candidate_factorizations, search_candidates

__all__ = [
    "BackendSpec",
    "PlanCache",
    "Planner",
    "PlannerConfig",
    "SearchBackend",
    "SimulationReport",
    "available_backends",
    "candidate_factorizations",
    "default_planner",
    "get_backend",
    "graph_signature",
    "load_entry_point_backends",
    "machine_signature",
    "plan_cache_key",
    "register_backend",
    "search_candidates",
    "unregister_backend",
]
