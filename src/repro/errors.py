"""Exception hierarchy shared across the Tofu reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without accidentally swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for malformed dataflow graphs (dangling tensors, cycles, ...)."""


class ShapeError(GraphError):
    """Raised when operator shape inference fails or shapes are inconsistent."""


class UnknownOperatorError(GraphError):
    """Raised when a node references an operator that is not registered."""


class TDLError(ReproError):
    """Raised for malformed TDL descriptions."""


class NonAffineError(TDLError):
    """Raised when symbolic interval analysis encounters a non-affine index
    expression (e.g. the product of two index variables), mirroring the error
    described in Figure 4 of the paper."""


class OpaqueOperatorError(TDLError):
    """Raised when an analysis requires the body of an opaque TDL function."""


class PartitionError(ReproError):
    """Raised when a partition plan cannot be constructed or applied."""


class NoStrategyError(PartitionError):
    """Raised when an operator has no viable partition-n-reduce strategy."""


class SimulationError(ReproError):
    """Raised for malformed simulator inputs.

    :attr:`code` is a stable, greppable identifier (``SIM000_SIMULATION``
    unless a more specific subclass or raise site narrows it); the CLI
    surfaces it as ``error: [CODE] message``.
    """

    code: str = "SIM000_SIMULATION"

    def __init__(self, message: str, *, code: "str | None" = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class ExecutionError(ReproError):
    """Raised when an execution backend cannot lower a graph (unknown
    backend, missing partition plan, unsupported lowering options, ...)."""


class StrategyError(ReproError):
    """Raised for malformed strategy expressions (unknown combinators, bad
    arguments, compositions the runtime cannot lower)."""


class CostModelError(ReproError):
    """Raised for cost-model failures: unknown registry names, models that
    cannot be constructed (a ``table`` model without a trace), or malformed
    saved-model payloads."""


class TraceError(CostModelError):
    """Raised for malformed measured-trace payloads.

    The message names the offending record (``record #i (name='...')``) so a
    bad trace is debuggable from the error alone; :attr:`index` and
    :attr:`record_name` carry the same information structurally.  The stable
    :attr:`code` is ``TRC002_BAD_RECORD`` when a specific record is at fault
    and ``TRC001_BAD_TRACE`` for file-level problems.
    """

    code: str = "TRC001_BAD_TRACE"

    def __init__(
        self,
        message: str,
        *,
        index: "int | None" = None,
        record_name: "str | None" = None,
        code: "str | None" = None,
    ):
        super().__init__(message)
        self.index = index
        self.record_name = record_name
        if code is not None:
            self.code = code
        elif index is not None:
            self.code = "TRC002_BAD_RECORD"


class AnalysisError(ReproError):
    """Raised by :mod:`repro.analysis` when a static check fails in strict mode.

    Carries the finding structurally so callers need not parse the message:
    :attr:`code` is the stable check code (``ANA003_CYCLIC_SCHEDULE``-style,
    see ``docs/verifier.md``), :attr:`check` the registry name of the checker
    that fired, and :attr:`task` / :attr:`node` the offending task or graph
    node when one can be named.
    """

    code: str = "ANA000_ANALYSIS"

    def __init__(
        self,
        message: str,
        *,
        code: "str | None" = None,
        check: "str | None" = None,
        task: "str | None" = None,
        node: "str | None" = None,
    ):
        super().__init__(message)
        if code is not None:
            self.code = code
        self.check = check
        self.task = task
        self.node = node


class OutOfMemoryError(SimulationError):
    """Raised (or recorded) when a simulated device exceeds its memory capacity."""

    code = "SIM001_OUT_OF_MEMORY"

    def __init__(self, device: str, required: int, capacity: int):
        super().__init__(
            f"device {device} requires {required} bytes but only has {capacity}"
        )
        self.device = device
        self.required = required
        self.capacity = capacity
