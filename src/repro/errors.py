"""Exception hierarchy shared across the Tofu reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without accidentally swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for malformed dataflow graphs (dangling tensors, cycles, ...)."""


class ShapeError(GraphError):
    """Raised when operator shape inference fails or shapes are inconsistent."""


class UnknownOperatorError(GraphError):
    """Raised when a node references an operator that is not registered."""


class TDLError(ReproError):
    """Raised for malformed TDL descriptions."""


class NonAffineError(TDLError):
    """Raised when symbolic interval analysis encounters a non-affine index
    expression (e.g. the product of two index variables), mirroring the error
    described in Figure 4 of the paper."""


class OpaqueOperatorError(TDLError):
    """Raised when an analysis requires the body of an opaque TDL function."""


class PartitionError(ReproError):
    """Raised when a partition plan cannot be constructed or applied."""


class NoStrategyError(PartitionError):
    """Raised when an operator has no viable partition-n-reduce strategy."""


class SimulationError(ReproError):
    """Raised for malformed simulator inputs."""


class ExecutionError(ReproError):
    """Raised when an execution backend cannot lower a graph (unknown
    backend, missing partition plan, unsupported lowering options, ...)."""


class StrategyError(ReproError):
    """Raised for malformed strategy expressions (unknown combinators, bad
    arguments, compositions the runtime cannot lower)."""


class CostModelError(ReproError):
    """Raised for cost-model failures: unknown registry names, models that
    cannot be constructed (a ``table`` model without a trace), or malformed
    saved-model payloads."""


class TraceError(CostModelError):
    """Raised for malformed measured-trace payloads.

    The message names the offending record (``record #i (name='...')``) so a
    bad trace is debuggable from the error alone; :attr:`index` and
    :attr:`record_name` carry the same information structurally.
    """

    def __init__(
        self,
        message: str,
        *,
        index: "int | None" = None,
        record_name: "str | None" = None,
    ):
        super().__init__(message)
        self.index = index
        self.record_name = record_name


class OutOfMemoryError(SimulationError):
    """Raised (or recorded) when a simulated device exceeds its memory capacity."""

    def __init__(self, device: str, required: int, capacity: int):
        super().__init__(
            f"device {device} requires {required} bytes but only has {capacity}"
        )
        self.device = device
        self.required = required
        self.capacity = capacity
