"""Symbolic interval arithmetic in the affine abstract domain (Sec 4.2).

An interval endpoint is an affine expression over the symbolic extents of the
operator's index variables::

    I = [ sum_i l_i * X_i + c_low ,  sum_i u_i * X_i + c_high ]

which is exactly the representation of Equation (1) in the paper.  Figure 4's
arithmetic rules are implemented verbatim: adding/subtracting scalars or other
intervals and scaling by scalars are supported; multiplying or comparing two
symbolic intervals raises :class:`NonAffineError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Union

from repro.errors import NonAffineError

Number = Union[int, float]


@dataclass(frozen=True)
class AffineExpr:
    """An affine combination of symbolic extents plus a constant."""

    coeffs: Dict[str, float] = field(default_factory=dict)
    const: float = 0.0

    # ------------------------------------------------------------- factories
    @staticmethod
    def constant(value: Number) -> "AffineExpr":
        return AffineExpr({}, float(value))

    @staticmethod
    def symbol(name: str, coeff: float = 1.0) -> "AffineExpr":
        return AffineExpr({name: float(coeff)}, 0.0)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        other = _coerce(other)
        coeffs = dict(self.coeffs)
        for sym, c in other.coeffs.items():
            coeffs[sym] = coeffs.get(sym, 0.0) + c
        return AffineExpr(_prune(coeffs), self.const + other.const)

    def __sub__(self, other: Union["AffineExpr", Number]) -> "AffineExpr":
        other = _coerce(other)
        coeffs = dict(self.coeffs)
        for sym, c in other.coeffs.items():
            coeffs[sym] = coeffs.get(sym, 0.0) - c
        return AffineExpr(_prune(coeffs), self.const - other.const)

    def scale(self, k: Number) -> "AffineExpr":
        k = float(k)
        return AffineExpr(
            _prune({sym: c * k for sym, c in self.coeffs.items()}), self.const * k
        )

    def is_constant(self) -> bool:
        return not self.coeffs

    def symbols(self) -> frozenset:
        return frozenset(self.coeffs)

    # ------------------------------------------------------------ evaluation
    def evaluate(self, extents: Mapping[str, float]) -> float:
        """Substitute concrete extents for every symbol."""
        value = self.const
        for sym, coeff in self.coeffs.items():
            if sym not in extents:
                raise KeyError(f"no concrete extent provided for symbol {sym!r}")
            value += coeff * float(extents[sym])
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = [f"{c:g}*{s}" for s, c in sorted(self.coeffs.items())]
        terms.append(f"{self.const:g}")
        return " + ".join(terms)


def _coerce(value: Union[AffineExpr, Number]) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, (int, float)):
        return AffineExpr.constant(value)
    raise NonAffineError(f"cannot use {value!r} in affine arithmetic")


def _prune(coeffs: Dict[str, float]) -> Dict[str, float]:
    return {s: c for s, c in coeffs.items() if c != 0.0}


@dataclass(frozen=True)
class Interval:
    """A symbolic interval ``[low, high]`` with affine endpoints."""

    low: AffineExpr
    high: AffineExpr

    # ------------------------------------------------------------- factories
    @staticmethod
    def for_variable(extent_symbol: str) -> "Interval":
        """The default interval of an index variable: ``[0, X]``."""
        return Interval(AffineExpr.constant(0.0), AffineExpr.symbol(extent_symbol))

    @staticmethod
    def point(value: Number) -> "Interval":
        expr = AffineExpr.constant(value)
        return Interval(expr, expr)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: Union["Interval", Number]) -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.low + other.low, self.high + other.high)
        return Interval(self.low + other, self.high + other)

    def __sub__(self, other: Union["Interval", Number]) -> "Interval":
        if isinstance(other, Interval):
            # [a,b] - [c,d] = [a-d, b-c]
            return Interval(self.low - other.high, self.high - other.low)
        return Interval(self.low - other, self.high - other)

    def scale(self, k: Number) -> "Interval":
        k = float(k)
        if k >= 0:
            return Interval(self.low.scale(k), self.high.scale(k))
        return Interval(self.high.scale(k), self.low.scale(k))

    def multiply(self, other: "Interval") -> "Interval":
        """Interval product, allowed only when one side is a constant point."""
        if other.is_constant_point():
            return self.scale(other.low.const)
        if self.is_constant_point():
            return other.scale(self.low.const)
        raise NonAffineError(
            "product of two symbolic intervals is not affine (Figure 4)"
        )

    def divide(self, other: "Interval") -> "Interval":
        if not other.is_constant_point() or other.low.const == 0:
            raise NonAffineError("division requires a non-zero constant divisor")
        return self.scale(1.0 / other.low.const)

    # --------------------------------------------------------------- queries
    def is_constant_point(self) -> bool:
        return (
            self.low.is_constant()
            and self.high.is_constant()
            and self.low.const == self.high.const
        )

    def symbols(self) -> frozenset:
        return self.low.symbols() | self.high.symbols()

    def evaluate(self, extents: Mapping[str, float]):
        """Concrete ``(low, high)`` endpoints for the given extents."""
        return self.low.evaluate(extents), self.high.evaluate(extents)

    def length(self, extents: Mapping[str, float]) -> float:
        """Concrete length ``high - low`` for the given extents."""
        low, high = self.evaluate(extents)
        return max(0.0, high - low)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.low!r}, {self.high!r}]"
