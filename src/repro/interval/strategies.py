"""Partition-n-reduce strategy discovery (Sec 3.1 / Sec 4.2).

A *basic partition strategy* parallelises an operator across ``g`` workers by
splitting one index variable's range into ``g`` pieces:

* **Case 1 — output-dimension partitioning**: the axis is an output index
  variable; every worker produces a slice of the output (concatenation).
* **Case 2 — reduction-dimension partitioning**: the axis is a reduction
  variable; every worker produces a partial output of full shape that must be
  combined with the reducer (the "reduce" step of partition-n-reduce).

The discovery and the per-worker input-region sizes both come out of the
symbolic interval analysis of the operator's TDL description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NoStrategyError, TDLError
from repro.interval.analysis import AccessSummary, analyze_cached
from repro.tdl.lang import TDLOperator


@dataclass(frozen=True)
class PartitionStrategy:
    """One partition-n-reduce strategy of an operator.

    Attributes:
        op: Operator name.
        axis: Name of the index variable whose range is split.
        kind: ``"output"`` (case 1) or ``"reduction"`` (case 2).
        output_dim: Output dimension that the axis corresponds to, or ``None``
            for reduction strategies (the output is partial, not sliced).
        reducer: Reducer combining partial outputs (reduction strategies only).
        input_dims: For every input argument, the dimension that follows the
            axis, or ``None`` when the worker needs the full input tensor.
    """

    op: str
    axis: str
    kind: str
    output_dim: Optional[int]
    reducer: Optional[str]
    input_dims: Tuple[Tuple[str, Optional[int]], ...]

    def input_dim(self, arg: str) -> Optional[int]:
        for name, dim in self.input_dims:
            if name == arg:
                return dim
        raise KeyError(arg)

    @property
    def needs_reduction(self) -> bool:
        return self.kind == "reduction"

    def describe(self) -> str:
        """Human-readable one-liner used by the CLI and examples."""
        if self.kind == "output":
            where = f"output dim {self.output_dim}"
        else:
            where = f"reduction axis ({self.reducer}-combine)"
        inputs = ", ".join(
            f"{name}:{'full' if dim is None else f'dim {dim}'}"
            for name, dim in self.input_dims
        )
        return f"{self.op}: split {self.axis!r} ({where}); inputs [{inputs}]"


def discover_strategies(
    description: TDLOperator,
    *,
    allow_reduction: bool = True,
    summary: Optional[AccessSummary] = None,
) -> List[PartitionStrategy]:
    """Enumerate every basic partition strategy of ``description``.

    ``allow_reduction=False`` reproduces the ICML18 baseline of the paper,
    which misses output-reduction strategies (Sec 7.3).
    """
    if summary is None:
        summary = analyze_cached(description)

    strategies: List[PartitionStrategy] = []
    candidates: List[str] = list(summary.output_vars)
    if allow_reduction:
        candidates += list(summary.reduction_vars)

    for axis in candidates:
        if axis in summary.blocked_vars:
            continue
        kind = summary.var_kinds[axis]
        input_dims: List[Tuple[str, Optional[int]]] = []
        for arg in summary.inputs:
            driven = summary.dims_driven_by(arg, axis)
            # Under the paper's Assumption 1 each output index addresses at
            # most one dimension of each input; if a description violates it
            # we conservatively replicate the input for this strategy.
            dim = driven[0] if len(driven) == 1 else None
            input_dims.append((arg, dim))
        output_dim = summary.output_vars.index(axis) if kind == "output" else None
        reducer = summary.reducer_of.get(axis) if kind == "reduction" else None
        strategies.append(
            PartitionStrategy(
                op=summary.op_name,
                axis=axis,
                kind=kind,
                output_dim=output_dim,
                reducer=reducer,
                input_dims=tuple(input_dims),
            )
        )

    if not strategies:
        raise NoStrategyError(
            f"operator {summary.op_name!r} has no viable partition strategy"
        )
    return strategies


# --------------------------------------------------------------------------
# Concrete evaluation: extents and per-worker input regions
# --------------------------------------------------------------------------
def bind_extents(
    summary: AccessSummary,
    output_shape: Sequence[int],
    input_shapes: Mapping[str, Sequence[int]],
) -> Dict[str, float]:
    """Map every index variable to its concrete extent.

    Output variables take their extents from the output shape positionally.
    Reduction-variable extents are solved from input dimensions: a dimension
    driven by a single variable pins that variable's extent; dimensions mixing
    several variables (halo patterns such as ``x + dx``) are solved once all
    but one of their variables are known.
    """
    if len(output_shape) != len(summary.output_vars):
        raise TDLError(
            f"operator {summary.op_name!r}: output rank {len(output_shape)} does "
            f"not match description rank {len(summary.output_vars)}"
        )
    extents: Dict[str, float] = {
        var: float(size) for var, size in zip(summary.output_vars, output_shape)
    }

    unknown = [v for v in summary.reduction_vars if v not in extents]
    # Iterate a few times so chains of dependencies resolve.
    for _ in range(3):
        if not unknown:
            break
        still_unknown: List[str] = []
        for var in unknown:
            solved = _solve_extent(summary, var, input_shapes, extents)
            if solved is None:
                still_unknown.append(var)
            else:
                extents[var] = solved
        if len(still_unknown) == len(unknown):
            break
        unknown = still_unknown
    # Anything left unsolved gets a conservative small extent so evaluation
    # still works (this only happens for exotic descriptions).
    for var in unknown:
        extents[var] = 1.0
    return extents


def _solve_extent(
    summary: AccessSummary,
    var: str,
    input_shapes: Mapping[str, Sequence[int]],
    known: Dict[str, float],
) -> Optional[float]:
    # Prefer dimensions addressed by this variable alone (exact), falling back
    # to mixed-variable (halo) dimensions which are only approximate because
    # interval lengths are continuous.
    candidates = []
    for arg, dims in summary.inputs.items():
        if arg not in input_shapes:
            continue
        shape = input_shapes[arg]
        for d, access in enumerate(dims):
            if access.full or var not in access.variables:
                continue
            if d >= len(shape):
                continue
            candidates.append((len(access.variables) > 1, arg, shape, d, access))
    candidates.sort(key=lambda entry: entry[0])
    for _, arg, shape, d, access in candidates:
        others = access.variables - {var}
        if not others.issubset(known.keys()):
            continue
        # Evaluate the interval's upper bound with the unknown extent set to 0
        # and with it set to 1; the difference is the coefficient.
        probe0 = dict(known)
        probe0[var] = 0.0
        probe1 = dict(known)
        probe1[var] = 1.0
        interval = access.intervals[0]
        high0 = interval.high.evaluate(probe0)
        high1 = interval.high.evaluate(probe1)
        coeff = high1 - high0
        if coeff <= 0:
            continue
        solved = (float(shape[d]) - high0) / coeff
        return max(1.0, solved)
    return None


def worker_input_elements(
    summary: AccessSummary,
    strategy: PartitionStrategy,
    arg: str,
    input_shape: Sequence[int],
    extents: Mapping[str, float],
    parts: int,
) -> float:
    """Number of elements of input ``arg`` one worker needs under ``strategy``.

    The axis variable's extent is shrunk to ``1/parts`` of its full range and
    the access intervals are re-evaluated, which naturally accounts for halo
    regions (e.g. ``x + dx`` accesses need ``X/parts + DX`` indices).
    """
    dims = summary.inputs.get(arg)
    full_elems = 1.0
    for size in input_shape:
        full_elems *= float(size)
    if not dims:
        return full_elems

    local_extents = dict(extents)
    local_extents[strategy.axis] = max(1.0, extents[strategy.axis] / parts)

    elems = 1.0
    for d, access in enumerate(dims):
        size = input_shape[d] if d < len(input_shape) else 1
        elems *= access.needed_length(local_extents, size)
    return min(elems, full_elems)


def worker_output_elements(
    summary: AccessSummary,
    strategy: PartitionStrategy,
    output_shape: Sequence[int],
    parts: int,
) -> float:
    """Number of output elements one worker produces under ``strategy``.

    Output-dimension strategies produce ``1/parts`` of the output; reduction
    strategies produce a full-size partial output.
    """
    total = 1.0
    for size in output_shape:
        total *= float(size)
    if strategy.kind == "output":
        return total / parts
    return total
