"""Symbolic interval analysis of TDL descriptions and strategy discovery."""

from repro.interval.analysis import AccessSummary, DimAccess, analyze, analyze_cached
from repro.interval.strategies import (
    PartitionStrategy,
    bind_extents,
    discover_strategies,
    worker_input_elements,
    worker_output_elements,
)
from repro.interval.symbolic import AffineExpr, Interval

__all__ = [
    "AccessSummary",
    "AffineExpr",
    "DimAccess",
    "Interval",
    "PartitionStrategy",
    "analyze",
    "analyze_cached",
    "bind_extents",
    "discover_strategies",
    "worker_input_elements",
    "worker_output_elements",
]
