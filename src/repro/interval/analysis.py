"""Symbolic execution of TDL descriptions (Sec 4.2).

``analyze`` walks the TDL body of an operator with every index variable bound
to its symbolic interval ``[0, X_var]`` and records, for every input tensor
and every dimension of that tensor, the symbolic interval of indices that the
computation reads.  This summary is what partition-strategy discovery and the
graph-level cost model consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.errors import NonAffineError, TDLError
from repro.interval.symbolic import Interval
from repro.tdl.expr import (
    BinaryOp,
    Const,
    Expr,
    FullSlice,
    IndexVar,
    OpaqueCall,
    TensorAccess,
    walk,
)
from repro.tdl.lang import TDLOperator


@dataclass
class DimAccess:
    """Access pattern of one dimension of one input tensor.

    ``intervals`` lists the symbolic intervals of every syntactic access to
    this dimension (multiple accesses are kept separate and hulled at concrete
    evaluation time).  ``full`` marks a ``:`` slice.  ``variables`` collects
    the index variables appearing in the dimension's index expressions.
    """

    intervals: List[Interval] = field(default_factory=list)
    full: bool = False
    variables: FrozenSet[str] = frozenset()

    def merge(self, other: "DimAccess") -> "DimAccess":
        return DimAccess(
            intervals=self.intervals + other.intervals,
            full=self.full or other.full,
            variables=self.variables | other.variables,
        )

    def needed_length(self, extents: Dict[str, float], dim_size: int) -> float:
        """Concrete number of indices needed along this dimension."""
        if self.full or not self.intervals:
            return float(dim_size)
        low = min(i.evaluate(extents)[0] for i in self.intervals)
        high = max(i.evaluate(extents)[1] for i in self.intervals)
        length = max(1.0, high - low)
        return min(float(dim_size), length)


@dataclass
class AccessSummary:
    """The result of analysing one operator's TDL description."""

    op_name: str
    output_vars: List[str]
    reduction_vars: List[str]
    var_kinds: Dict[str, str]
    reducer_of: Dict[str, str]
    inputs: Dict[str, List[DimAccess]]
    has_opaque: bool
    blocked_vars: FrozenSet[str] = frozenset()
    elementwise: bool = False

    def input_ndim(self, arg: str) -> int:
        return len(self.inputs[arg])

    def dims_driven_by(self, arg: str, var: str) -> List[int]:
        """Dimensions of input ``arg`` whose index expression uses ``var``."""
        return [
            d
            for d, access in enumerate(self.inputs[arg])
            if var in access.variables and not access.full
        ]


def _evaluate_index(expr: Expr, env: Dict[str, Interval]) -> Interval:
    """Evaluate an index expression to a symbolic interval."""
    if isinstance(expr, Const):
        return Interval.point(expr.value)
    if isinstance(expr, IndexVar):
        try:
            return env[expr.name]
        except KeyError:
            raise TDLError(f"unbound index variable {expr.name!r}") from None
    if isinstance(expr, BinaryOp):
        lhs = _evaluate_index(expr.lhs, env)
        rhs = _evaluate_index(expr.rhs, env)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs.multiply(rhs)
        if expr.op == "/":
            return lhs.divide(rhs)
        raise NonAffineError(f"operator {expr.op!r} is not affine in index position")
    raise NonAffineError(f"expression {expr!r} cannot appear in an index")


def _collect_env(description: TDLOperator) -> Dict[str, Interval]:
    env: Dict[str, Interval] = {}
    for var in description.output_vars:
        if var.name in env:
            raise TDLError(f"duplicate index variable name {var.name!r}")
        env[var.name] = Interval.for_variable(var.name)
    for var in description.reduction_vars:
        if var.name in env:
            raise TDLError(
                f"reduction variable {var.name!r} shadows another index variable"
            )
        env[var.name] = Interval.for_variable(var.name)
    return env


def _variables_in(expr: Expr) -> FrozenSet[str]:
    return frozenset(e.name for e in walk(expr) if isinstance(e, IndexVar))


def analyze(description: TDLOperator) -> AccessSummary:
    """Analyse a TDL description and return its :class:`AccessSummary`."""
    env = _collect_env(description)

    reducer_of: Dict[str, str] = {}
    for red in description.reductions():
        for var in red.variables:
            reducer_of[var.name] = red.reducer

    inputs: Dict[str, List[DimAccess]] = {}
    blocked: set = set()

    for node in walk(description.body):
        if isinstance(node, OpaqueCall):
            # Index variables used to address the opaque result cannot be used
            # as partition axes: the opaque body may mix them arbitrarily.
            for idx in node.result_indices:
                blocked |= _variables_in(idx)
        if not isinstance(node, TensorAccess):
            continue
        arg = node.tensor.name
        dims: List[DimAccess] = []
        for idx in node.indices:
            if isinstance(idx, FullSlice):
                dims.append(DimAccess(full=True))
                continue
            interval = _evaluate_index(idx, env)
            dims.append(
                DimAccess(intervals=[interval], variables=_variables_in(idx))
            )
        if arg in inputs:
            previous = inputs[arg]
            if len(previous) != len(dims):
                raise TDLError(
                    f"inconsistent rank for input {arg!r} in {description.name!r}"
                )
            inputs[arg] = [p.merge(d) for p, d in zip(previous, dims)]
        else:
            inputs[arg] = dims

    # Inputs that are never accessed (possible for opaque descriptions that
    # ignore an argument) are treated as fully required.
    for name in description.input_names:
        inputs.setdefault(name, [])

    summary = AccessSummary(
        op_name=description.name,
        output_vars=[v.name for v in description.output_vars],
        reduction_vars=[v.name for v in description.reduction_vars],
        var_kinds={
            **{v.name: "output" for v in description.output_vars},
            **{v.name: "reduction" for v in description.reduction_vars},
        },
        reducer_of=reducer_of,
        inputs=inputs,
        has_opaque=description.has_opaque,
        blocked_vars=frozenset(blocked),
        elementwise=description.is_elementwise(),
    )
    return summary


_SUMMARY_CACHE: Dict[int, AccessSummary] = {}


def analyze_cached(description: TDLOperator) -> AccessSummary:
    """Memoised :func:`analyze`, keyed by description object identity."""
    key = id(description)
    summary = _SUMMARY_CACHE.get(key)
    if summary is None:
        summary = analyze(description)
        _SUMMARY_CACHE[key] = summary
    return summary
