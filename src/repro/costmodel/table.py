"""Table cost model: piecewise-linear lookup over measured trace points.

The table keeps, per operator (and per category as a coarser tier), the
measured ``(size, duration)`` points from a trace, where *size* is flops for
compute-bound records and bytes for the rest.  Pricing interpolates:

* exact or in-range sizes: linear interpolation between the two bracketing
  points;
* below the smallest / above the largest point: proportional scaling from
  the nearest end point (time/size is held constant), which keeps tiny and
  huge kernels monotone instead of extrapolating a fitted line below zero;
* operators never seen in the trace: fall back to the operator's *category*
  curve, then to the roofline.

Comm records build per-channel curves the same way, keyed on bytes; a
channel with no measurements defers to the simulator's link pricing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.costmodel.base import CostModel, OpSample
from repro.costmodel.roofline import default_roofline
from repro.costmodel.trace import Trace, TraceRecord
from repro.errors import CostModelError
from repro.sim.device import DeviceSpec, Link, MachineSpec

__all__ = ["TableCostModel"]

#: A lookup curve: sorted (size, duration) points.
_Curve = Tuple[Tuple[float, float], ...]


def _build_curve(points: Sequence[Tuple[float, float]]) -> _Curve:
    """Sort points by size and average duplicate sizes into one point."""
    by_size: Dict[float, List[float]] = {}
    for size, duration in points:
        by_size.setdefault(float(size), []).append(float(duration))
    return tuple(
        (size, sum(durations) / len(durations))
        for size, durations in sorted(by_size.items())
    )


def _interpolate(curve: _Curve, size: float) -> float:
    """Piecewise-linear lookup with proportional end-point scaling."""
    lo_size, lo_time = curve[0]
    hi_size, hi_time = curve[-1]
    if size <= lo_size:
        return lo_time * (size / lo_size) if lo_size > 0 else lo_time
    if size >= hi_size:
        return hi_time * (size / hi_size) if hi_size > 0 else hi_time
    for (s0, t0), (s1, t1) in zip(curve, curve[1:]):
        if s0 <= size <= s1:
            if s1 == s0:
                return t0
            frac = (size - s0) / (s1 - s0)
            return t0 + frac * (t1 - t0)
    return hi_time  # unreachable; curve covers [lo, hi]


def _record_size(record: TraceRecord) -> float:
    """The lookup key of a compute record: flops when present, else bytes."""
    return record.flops if record.flops > 0 else record.mem_bytes


def _sample_size(sample: OpSample) -> float:
    return sample.flops if sample.flops > 0 else sample.mem_bytes


class TableCostModel(CostModel):
    """Lookup-table pricing built from a measured trace.

    Build one with :meth:`fit` (or :func:`repro.costmodel.fit_cost_model`)
    and activate it via the ``cost_model`` config knobs or
    :func:`repro.costmodel.use_cost_model`.  Lookup order per op:
    op curve → category curve → roofline fallback.
    """

    name = "table"

    def __init__(
        self,
        *,
        op_curves: Dict[str, _Curve],
        category_curves: Dict[str, _Curve],
        comm_curves: Optional[Dict[str, _Curve]] = None,
    ):
        """Construct from prebuilt curves (normally via :meth:`fit`).

        Args:
            op_curves: Per-operator ``(size, duration)`` curves.
            category_curves: Per-category curves, the first fallback tier.
            comm_curves: Per-channel ``(bytes, duration)`` curves; channels
                absent here keep link-bandwidth pricing.

        Raises:
            CostModelError: When every curve dict is empty (the model could
                never price anything but the roofline fallback).
        """
        if not op_curves and not category_curves and not comm_curves:
            raise CostModelError(
                "table cost model has no measurements; fit it from a "
                "non-empty trace (see TableCostModel.fit)"
            )
        self._op_curves = dict(op_curves)
        self._category_curves = dict(category_curves)
        self._comm_curves = dict(comm_curves or {})
        self._fallback = default_roofline()

    @classmethod
    def fit(cls, trace: Trace) -> "TableCostModel":
        """Build a table model from a validated trace.

        Args:
            trace: The measured trace (see :mod:`repro.costmodel.trace`).

        Returns:
            A :class:`TableCostModel` with one curve per operator seen, one
            per category, and one per comm channel.

        Raises:
            CostModelError: When the trace holds no records at all.
        """
        op_points: Dict[str, List[Tuple[float, float]]] = {}
        category_points: Dict[str, List[Tuple[float, float]]] = {}
        comm_points: Dict[str, List[Tuple[float, float]]] = {}
        for record in trace.records:
            if record.kind == "compute":
                size = _record_size(record)
                op_points.setdefault(record.op, []).append((size, record.duration))
                category_points.setdefault(record.category, []).append(
                    (size, record.duration)
                )
            else:
                comm_points.setdefault(record.channel, []).append(
                    (record.comm_bytes, record.duration)
                )
        if not op_points and not comm_points:
            raise CostModelError(
                "cannot fit a table cost model from an empty trace"
            )
        return cls(
            op_curves={op: _build_curve(pts) for op, pts in op_points.items()},
            category_curves={
                cat: _build_curve(pts) for cat, pts in category_points.items()
            },
            comm_curves={ch: _build_curve(pts) for ch, pts in comm_points.items()},
        )

    def op_time(
        self, sample: OpSample, device: DeviceSpec, machine: MachineSpec
    ) -> float:
        """Interpolated kernel time for ``sample``.

        Looks up the operator's own curve, then its category curve, then
        falls back to the roofline (so a table fitted on an MLP still prices
        a convolution somehow).

        Args:
            sample: Operator features of the launch.
            device: Target device (used only by the roofline fallback).
            machine: Machine model (used only by the roofline fallback).

        Returns:
            The predicted kernel time in seconds.
        """
        size = _sample_size(sample)
        curve = self._op_curves.get(sample.op) or self._category_curves.get(
            sample.category
        )
        if curve:
            return max(0.0, _interpolate(curve, size))
        return self._fallback.op_time(sample, device, machine)

    def comm_time(
        self,
        comm_bytes: float,
        *,
        link: Optional[Link] = None,
        channel: Optional[str] = None,
    ) -> Optional[float]:
        """Interpolated transfer time, or ``None`` when this channel was
        never measured (keeping link-bandwidth pricing).

        Args:
            comm_bytes: Transfer volume in bytes.
            link: Resolved link (its ``kind`` keys the curve when
                ``channel`` is not given).
            channel: Channel name keying the curve.

        Returns:
            The predicted transfer time, or ``None`` to defer.
        """
        key = channel or (link.kind if link is not None else None)
        if key is None:
            return None
        curve = self._comm_curves.get(key)
        if not curve:
            return None
        return max(0.0, _interpolate(curve, comm_bytes))

    def to_dict(self) -> Dict[str, object]:
        """Serialised form carrying every curve (inverse of
        :meth:`from_dict`)."""
        return {
            "model": self.name,
            "op_curves": {
                op: [list(point) for point in curve]
                for op, curve in sorted(self._op_curves.items())
            },
            "category_curves": {
                cat: [list(point) for point in curve]
                for cat, curve in sorted(self._category_curves.items())
            },
            "comm_curves": {
                ch: [list(point) for point in curve]
                for ch, curve in sorted(self._comm_curves.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TableCostModel":
        """Rebuild a table model from :meth:`to_dict` output.

        Raises:
            CostModelError: When the payload is not a table-model payload.
        """
        if payload.get("model") != cls.name:
            raise CostModelError(
                f"payload is not a table cost model: model={payload.get('model')!r}"
            )

        def curves(key: str) -> Dict[str, _Curve]:
            raw = payload.get(key, {})
            if not isinstance(raw, dict):
                raise CostModelError(f"table payload field {key!r} must be an object")
            return {
                name: tuple((float(s), float(t)) for s, t in points)
                for name, points in raw.items()
            }

        return cls(
            op_curves=curves("op_curves"),
            category_curves=curves("category_curves"),
            comm_curves=curves("comm_curves"),
        )
