"""Trace replay: score cost models against a measured DAG.

:func:`replay_trace` takes a validated :class:`~repro.costmodel.trace.Trace`
and a set of cost models, re-prices every record through each model, and
reports prediction error per op class — MAPE, median and p95 absolute
percentage error — plus an end-to-end makespan comparison obtained by
running the trace's DAG through :class:`repro.sim.engine.TaskGraphSimulator`
twice (measured durations vs predicted durations).

The report is a versioned JSON payload (``"format": "tofu-replay-report"``)
written deterministically (:func:`write_report` sorts keys and rounds
floats), so a checked-in golden report is byte-stable across runs — the CI
docs-gate relies on that.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Mapping, Optional, Sequence

from repro.costmodel.base import CostModel, OpSample
from repro.costmodel.trace import Trace, TraceRecord
from repro.errors import CostModelError
from repro.sim.device import Link, MachineSpec, k80_8gpu_machine
from repro.sim.engine import Task, TaskGraphSimulator

__all__ = [
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "render_report",
    "replay_trace",
    "write_report",
]

#: Value of the ``"format"`` tag every replay report carries.
REPORT_FORMAT = "tofu-replay-report"

#: Current replay-report schema version.
REPORT_VERSION = 1

#: Decimal places kept in the report (byte-stability without float noise).
_ROUND = 6


def _device_index(label: str, mapping: Dict[str, int]) -> int:
    if label not in mapping:
        mapping[label] = len(mapping)
    return mapping[label]


def _record_sample(record: TraceRecord) -> OpSample:
    return OpSample(
        op=record.op,
        category=record.category,
        flops=record.flops,
        mem_bytes=record.mem_bytes,
        out_elements=record.out_elements,
    )


def _comm_link(machine: MachineSpec, record: TraceRecord, device: int) -> Link:
    if record.channel == "cpu":
        return machine.host_link(device)
    if record.channel == "p2p":
        return machine.p2p_link(device)
    # "net" (or any custom channel) has no physical edge on a single-machine
    # replay topology; give each such channel its own synthetic contention
    # queue so its transfers serialise but never collide with real links.
    return Link(kind="net", key=f"net:{record.channel}", bandwidth=1.0)


def _predict_record(
    model: CostModel, record: TraceRecord, machine: MachineSpec, device: int
) -> float:
    if record.kind == "compute":
        return model.op_time(_record_sample(record), machine.device(device), machine)
    predicted = model.comm_time(record.comm_bytes, channel=record.channel)
    if predicted is None:
        predicted = _comm_link(machine, record, device).transfer_time(
            record.comm_bytes
        )
    return predicted


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    n = len(sorted_values)
    index = min(n - 1, max(0, math.ceil(q * n) - 1))
    return sorted_values[index]


def _error_stats(errors: Sequence[float]) -> Dict[str, object]:
    ordered = sorted(errors)
    return {
        "count": len(ordered),
        "mape": round(100.0 * sum(ordered) / len(ordered), _ROUND),
        "p50": round(100.0 * _percentile(ordered, 0.50), _ROUND),
        "p95": round(100.0 * _percentile(ordered, 0.95), _ROUND),
    }


def _trace_tasks(
    trace: Trace,
    machine: MachineSpec,
    device_map: Dict[str, int],
    durations: Mapping[str, float],
) -> Dict[str, Task]:
    tasks: Dict[str, Task] = {}
    for record in trace.records:
        device = _device_index(record.device, device_map)
        if record.kind == "compute":
            tasks[record.name] = Task(
                name=record.name,
                device=device,
                kind="compute",
                duration=durations[record.name],
                deps=tuple(record.deps),
            )
        else:
            link = _comm_link(machine, record, device)
            tasks[record.name] = Task(
                name=record.name,
                device=device,
                kind="comm",
                comm_bytes=record.comm_bytes,
                channel=link.kind,
                link=link,
                deps=tuple(record.deps),
                comm_time=durations[record.name],
            )
    return tasks


def replay_trace(
    trace: Trace,
    models: Mapping[str, CostModel],
    *,
    machine: Optional[MachineSpec] = None,
) -> Dict[str, object]:
    """Replay a measured trace under each model and report prediction error.

    Every record is re-priced by every model (compute records through
    ``op_time`` on the record's features, comm records through ``comm_time``
    with link-bandwidth fallback) and compared against the measured
    duration.  Records measured at exactly zero seconds are excluded from
    the percentage-error statistics (their APE is undefined) but still
    counted in the trace summary.  The whole DAG is then simulated twice —
    measured vs predicted durations — for a makespan-level error.

    Args:
        trace: The validated measured trace.
        models: Models to score, keyed by the label to report them under.
        machine: Replay topology; defaults to the paper's 8-GPU K80 machine
            (grown to fit if the trace names more devices).

    Returns:
        The report payload (see ``docs/trace-schema.md`` for the schema):
        ``{"format": "tofu-replay-report", "version": 1, "trace": {...},
        "models": {label: {"signature", "per_class", "overall",
        "makespan"}}}``.

    Raises:
        CostModelError: When ``models`` is empty or the trace has no
            records to score.
    """
    if not models:
        raise CostModelError("replay needs at least one cost model to score")
    if not trace.records:
        raise CostModelError("cannot replay an empty trace")

    device_map: Dict[str, int] = {}
    for record in trace.records:
        _device_index(record.device, device_map)
    base = machine if machine is not None else k80_8gpu_machine()
    if len(device_map) > base.num_devices:
        base = k80_8gpu_machine(len(device_map))

    measured = {record.name: record.duration for record in trace.records}
    simulator = TaskGraphSimulator(base)
    measured_makespan = simulator.run(
        _trace_tasks(trace, base, device_map, measured), check_memory=False
    ).iteration_time

    model_reports: Dict[str, object] = {}
    for label in sorted(models):
        model = models[label]
        predictions: Dict[str, float] = {}
        per_class_errors: Dict[str, List[float]] = {}
        all_errors: List[float] = []
        for record in trace.records:
            device = device_map[record.device]
            predicted = _predict_record(model, record, base, device)
            predictions[record.name] = predicted
            if record.duration > 0:
                error = abs(predicted - record.duration) / record.duration
                key = record.category if record.kind == "compute" else "comm"
                per_class_errors.setdefault(key, []).append(error)
                all_errors.append(error)
        if not all_errors:
            raise CostModelError(
                "trace has no records with a positive measured duration; "
                "nothing to score"
            )
        predicted_makespan = simulator.run(
            _trace_tasks(trace, base, device_map, predictions),
            check_memory=False,
        ).iteration_time
        makespan_error = (
            abs(predicted_makespan - measured_makespan) / measured_makespan
            if measured_makespan > 0
            else 0.0
        )
        model_reports[label] = {
            "signature": model.signature(),
            "per_class": {
                key: _error_stats(errors)
                for key, errors in sorted(per_class_errors.items())
            },
            "overall": _error_stats(all_errors),
            "makespan": {
                "measured": round(measured_makespan, _ROUND + 6),
                "predicted": round(predicted_makespan, _ROUND + 6),
                "error_pct": round(100.0 * makespan_error, _ROUND),
            },
        }

    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "trace": {
            "num_records": len(trace.records),
            "num_compute": len(trace.compute_records()),
            "num_comm": len(trace.comm_records()),
        },
        "models": model_reports,
    }


def render_report(report: Mapping[str, object]) -> str:
    """Human-readable table of a replay report (the CLI's output)."""
    lines: List[str] = []
    trace_info = report.get("trace", {})
    lines.append(
        "replayed {num_records} records "
        "({num_compute} compute, {num_comm} comm)".format(**trace_info)
    )
    header = (
        f"{'model':<10} {'class':<14} {'n':>5} "
        f"{'MAPE%':>9} {'p50%':>9} {'p95%':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    models = report.get("models", {})
    for label in sorted(models):
        entry = models[label]
        rows = dict(entry["per_class"])
        rows["(overall)"] = entry["overall"]
        for klass in sorted(rows):
            stats = rows[klass]
            lines.append(
                f"{label:<10} {klass:<14} {stats['count']:>5} "
                f"{stats['mape']:>9.3f} {stats['p50']:>9.3f} {stats['p95']:>9.3f}"
            )
        makespan = entry["makespan"]
        lines.append(
            f"{label:<10} makespan: measured {makespan['measured']:.6g}s, "
            f"predicted {makespan['predicted']:.6g}s "
            f"(error {makespan['error_pct']:.3f}%)"
        )
    return "\n".join(lines)


def write_report(
    report: Mapping[str, object], path: "str | os.PathLike[str]"
) -> None:
    """Write a replay report as deterministic JSON (sorted keys, two-space
    indent, trailing newline) — byte-identical for identical inputs."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
