"""The string-keyed cost-model registry and config-knob resolution.

Built-in kinds — ``roofline`` (parameterless), ``table`` and ``fitted``
(need a ``trace=`` path or a saved-model path to construct) — register at
import time; third parties add kinds through the ``repro.cost_models``
entry-point group, exactly like planner/runtime backends (see
``docs/cost-models.md`` for the registration recipe).

:func:`resolve_cost_model` is the one spelling-normaliser: it accepts a
:class:`~repro.costmodel.base.CostModel` instance, a registry name
(``"table:trace=/path.json"`` passes constructor options inline), or a path
to a saved-model JSON.  :func:`configured_cost_model` and
:func:`cost_model_cache_token` apply the config semantics the caches rely
on: the default ``"roofline"`` contributes *nothing* to cache keys (token
``None``), so every pre-existing plan and program cache entry stays valid.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.costmodel.base import CostModel
from repro.costmodel.calibrate import fit_cost_model, load_cost_model
from repro.costmodel.roofline import (
    DEFAULT_COST_MODEL_SIGNATURE,
    RooflineCostModel,
    default_roofline,
)
from repro.errors import CostModelError
from repro.plugins import BackendRegistry, keyword_option_names

__all__ = [
    "CostModelSpec",
    "available_cost_models",
    "configured_cost_model",
    "cost_model_cache_token",
    "get_cost_model_spec",
    "load_entry_point_cost_models",
    "register_cost_model",
    "resolve_cost_model",
    "unregister_cost_model",
]

#: Entry-point group third-party packages advertise cost models through.
ENTRY_POINT_GROUP = "repro.cost_models"


@dataclass(frozen=True)
class CostModelSpec:
    """Registry entry for one cost-model kind.

    Attributes:
        name: Registry key (what configs and ``--cost-model`` name).
        factory: Callable building a :class:`CostModel`; keyword options
            come from the ``name:key=value,...`` spelling.
        description: One line for ``available_cost_models`` listings.
        option_names: Keyword options the factory accepts (``None`` means
            accept anything), used for early validation.
    """

    name: str
    factory: Callable[..., CostModel]
    description: str = ""
    option_names: Optional[Sequence[str]] = None


def _make_entry_point_spec(name: str, factory: Callable) -> CostModelSpec:
    return CostModelSpec(
        name=name,
        factory=factory,
        description=f"entry-point cost model {name!r}",
        option_names=keyword_option_names(factory),
    )


_REGISTRY = BackendRegistry(
    kind="cost-model",
    error_cls=CostModelError,
    entry_point_group=ENTRY_POINT_GROUP,
    spec_type=CostModelSpec,
    make_spec=_make_entry_point_spec,
)


def register_cost_model(spec: CostModelSpec, *, replace: bool = False) -> CostModelSpec:
    """Register a cost-model kind.

    Args:
        spec: The spec to add.
        replace: Allow overriding an existing kind of the same name.

    Returns:
        The spec, for decorator-style use.

    Raises:
        CostModelError: When the name is taken and ``replace`` is false.
    """
    return _REGISTRY.register(spec, replace=replace)


def unregister_cost_model(name: str) -> None:
    """Remove a cost-model kind (no-op when absent)."""
    _REGISTRY.unregister(name)


def get_cost_model_spec(name: str) -> CostModelSpec:
    """Look up a kind by name, pulling in entry points on a miss.

    Raises:
        CostModelError: For an unknown kind (message lists what is
            registered).
    """
    return _REGISTRY.get(name)


def available_cost_models() -> List[str]:
    """Sorted names of every registered cost-model kind (entry points
    included)."""
    return _REGISTRY.available()


def load_entry_point_cost_models(*, reload: bool = False) -> List[str]:
    """Load the ``repro.cost_models`` entry-point group; returns names
    added."""
    return _REGISTRY.load_entry_points(reload=reload)


# ---------------------------------------------------------------- built-ins
def _roofline_factory(**options) -> CostModel:
    if options:
        raise CostModelError(
            f"the roofline cost model takes no options, got {sorted(options)}"
        )
    return default_roofline()


def _needs_trace_factory(kind: str) -> Callable[..., CostModel]:
    def factory(*, trace: Optional[str] = None, **options) -> CostModel:
        if options:
            raise CostModelError(
                f"cost model {kind!r} got unknown options {sorted(options)} "
                f"(accepted: trace)"
            )
        if trace is None:
            raise CostModelError(
                f"cost model {kind!r} must be fitted from a measured trace; "
                f"spell it {kind}:trace=/path/to/trace.json, or fit and save "
                f"one with `tofu-repro replay --fit {kind} --save-model ...` "
                f"and point cost_model at the saved file"
            )
        return fit_cost_model(trace, kind)

    return factory


register_cost_model(
    CostModelSpec(
        name="roofline",
        factory=_roofline_factory,
        description="analytic roofline pricing (the default; bit-exact)",
        option_names=(),
    )
)
register_cost_model(
    CostModelSpec(
        name="table",
        factory=_needs_trace_factory("table"),
        description="piecewise-linear lookup fitted from a trace "
        "(table:trace=/path.json)",
        option_names=("trace",),
    )
)
register_cost_model(
    CostModelSpec(
        name="fitted",
        factory=_needs_trace_factory("fitted"),
        description="per-category least-squares fitted from a trace "
        "(fitted:trace=/path.json)",
        option_names=("trace",),
    )
)


# ------------------------------------------------------------- resolution
def _parse_spec_string(text: str) -> CostModel:
    name, _, option_text = text.partition(":")
    options = {}
    if option_text:
        for item in option_text.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key:
                raise CostModelError(
                    f"malformed cost-model option {item!r} in {text!r} "
                    f"(expected key=value)"
                )
            options[key.strip()] = value.strip()
    spec = get_cost_model_spec(name.strip())
    if spec.option_names is not None:
        unknown = sorted(set(options) - set(spec.option_names))
        if unknown:
            raise CostModelError(
                f"cost model {spec.name!r} got unknown options {unknown} "
                f"(accepted: {sorted(spec.option_names) or 'none'})"
            )
    model = spec.factory(**options)
    if not isinstance(model, CostModel):
        raise CostModelError(
            f"cost-model factory {spec.name!r} returned "
            f"{type(model).__name__}, not a CostModel"
        )
    return model


def resolve_cost_model(value: Union[str, CostModel, None]) -> CostModel:
    """Normalise any cost-model spelling to a :class:`CostModel` instance.

    Accepted spellings:

    * a :class:`CostModel` instance — returned as-is;
    * ``None`` or ``"roofline"`` — the default roofline;
    * a registry name, optionally with options:
      ``"table:trace=/path/to/trace.json"``;
    * a filesystem path to a saved model
      (``save_cost_model`` / ``tofu-repro replay --save-model`` output).

    Raises:
        CostModelError: For unknown names, malformed option strings, or
            unreadable saved-model files.
    """
    if value is None:
        return default_roofline()
    if isinstance(value, CostModel):
        return value
    if not isinstance(value, str):
        raise CostModelError(
            f"cost_model must be a CostModel, a registry name, or a path; "
            f"got {type(value).__name__}"
        )
    # "name:key=value,..." wins over the path heuristic so that a path in an
    # option ("table:trace=/path.json") is not mistaken for a saved model.
    head, sep, _ = value.partition(":")
    if sep and "=" in value:
        try:
            get_cost_model_spec(head.strip())
        except CostModelError:
            pass
        else:
            return _parse_spec_string(value)
    if value.endswith(".json") or os.path.sep in value or os.path.isfile(value):
        return load_cost_model(value)
    return _parse_spec_string(value)


def configured_cost_model(value: Union[str, CostModel, None]) -> Optional[CostModel]:
    """Resolve a config knob's value to the model to *activate*, or ``None``.

    The default spelling (``None`` / ``"roofline"``) resolves to ``None`` —
    the config then defers to whatever model is already active in the
    context (``use_cost_model``), and with none active the inline roofline
    path runs.  Any non-default spelling resolves to a concrete model that
    wins over the surrounding context; to force roofline pricing *inside* a
    non-default context, pass a :class:`RooflineCostModel` instance rather
    than the string.
    """
    if value is None or (isinstance(value, str) and value == "roofline"):
        return None
    model = resolve_cost_model(value)
    if isinstance(model, RooflineCostModel) and not isinstance(value, CostModel):
        # A saved-roofline file is still the default pricing: no override.
        return None
    return model


def cost_model_cache_token(model: Optional[CostModel]) -> Optional[str]:
    """The cache-key contribution of a cost model: its signature, or ``None``
    for the default roofline (so default-priced entries keep their exact
    pre-cost-model cache keys — the compatibility guarantee the README's
    migration note documents)."""
    if model is None:
        return None
    signature = model.signature()
    if signature == DEFAULT_COST_MODEL_SIGNATURE:
        return None
    return signature
