"""Measured-trace payloads: the versioned JSON schema and its validator.

A *trace* is a list of per-task measurements — compute records carrying the
operator features the cost models consume (flops, bytes, output elements)
and comm records carrying transfer volume — each with a measured duration in
seconds.  The on-disk format is JSON with ``{"format": "tofu-trace",
"version": 1, "records": [...]}``; the full schema, field-by-field, lives in
``docs/trace-schema.md``.

Validation is strict and structured: every malformed record raises
:class:`repro.errors.TraceError` with a ``record #i (name='...')`` message
plus ``index``/``record_name`` attributes, so a 10k-record trace with one
NaN timing is debuggable from the exception alone.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import TraceError

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceRecord",
    "load_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
]

#: Value of the ``"format"`` tag every trace payload must carry.
TRACE_FORMAT = "tofu-trace"

#: Current (and only) trace schema version.
TRACE_VERSION = 1

_RECORD_KINDS = ("compute", "comm")


@dataclass(frozen=True)
class TraceRecord:
    """One measured task.

    Attributes:
        name: Unique-ish label of the task (node or transfer name).
        kind: ``"compute"`` or ``"comm"``.
        duration: Measured wall time in seconds (finite, >= 0).
        op: Operator name (compute records; ``""`` for comm).
        category: Operator cost category (compute records; ``""`` for comm).
        flops: Floating-point operations (compute records).
        mem_bytes: Bytes read + written (compute records).
        out_elements: Output tensor elements (compute records).
        comm_bytes: Transfer volume in bytes (comm records).
        channel: Transfer channel name (comm records; e.g. ``"p2p"``).
        device: Optional device label the task ran on.
        deps: Names of records this task waited on (used by replay to
            rebuild the DAG; empty means source task).
    """

    name: str
    kind: str
    duration: float
    op: str = ""
    category: str = ""
    flops: float = 0.0
    mem_bytes: float = 0.0
    out_elements: float = 0.0
    comm_bytes: float = 0.0
    channel: str = "p2p"
    device: str = ""
    deps: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form of this record (inverse of
        :meth:`from_dict`); omits empty optional fields for compactness."""
        payload: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "duration": self.duration,
        }
        if self.kind == "compute":
            payload["op"] = self.op
            payload["category"] = self.category
            payload["flops"] = self.flops
            payload["mem_bytes"] = self.mem_bytes
            payload["out_elements"] = self.out_elements
        else:
            payload["comm_bytes"] = self.comm_bytes
            payload["channel"] = self.channel
        if self.device:
            payload["device"] = self.device
        if self.deps:
            payload["deps"] = list(self.deps)
        return payload


@dataclass(frozen=True)
class Trace:
    """A validated sequence of :class:`TraceRecord`, plus free-form metadata.

    Attributes:
        records: The measured tasks, in file order.
        metadata: Optional provenance (hardware, framework, date, ...);
            carried through save/load untouched.
    """

    records: Tuple[TraceRecord, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    def compute_records(self) -> List[TraceRecord]:
        """The compute-kind records, in file order."""
        return [r for r in self.records if r.kind == "compute"]

    def comm_records(self) -> List[TraceRecord]:
        """The comm-kind records, in file order."""
        return [r for r in self.records if r.kind == "comm"]


def _record_error(index: int, name: object, problem: str) -> TraceError:
    label = name if isinstance(name, str) else "?"
    return TraceError(
        f"record #{index} (name='{label}'): {problem}",
        index=index,
        record_name=label if isinstance(name, str) else None,
    )


def _require_finite_number(
    value: object, *, index: int, name: object, fieldname: str, minimum: float = 0.0
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _record_error(
            index, name, f"field '{fieldname}' must be a number, got {value!r}"
        )
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise _record_error(
            index, name, f"field '{fieldname}' must be finite, got {value!r}"
        )
    if value < minimum:
        raise _record_error(
            index, name, f"field '{fieldname}' must be >= {minimum}, got {value!r}"
        )
    return value


def _record_from_dict(payload: object, index: int) -> TraceRecord:
    if not isinstance(payload, dict):
        raise _record_error(
            index, None, f"record must be an object, got {type(payload).__name__}"
        )
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise _record_error(index, name, "missing required field 'name'")
    kind = payload.get("kind")
    if kind not in _RECORD_KINDS:
        raise _record_error(
            index,
            name,
            f"field 'kind' must be one of {list(_RECORD_KINDS)}, got {kind!r}",
        )
    if "duration" not in payload:
        raise _record_error(index, name, "missing required field 'duration'")
    duration = _require_finite_number(
        payload["duration"], index=index, name=name, fieldname="duration"
    )
    deps_raw = payload.get("deps", [])
    if not isinstance(deps_raw, list) or not all(
        isinstance(d, str) for d in deps_raw
    ):
        raise _record_error(index, name, "field 'deps' must be a list of strings")
    device = payload.get("device", "")
    if not isinstance(device, str):
        raise _record_error(index, name, "field 'device' must be a string")

    if kind == "compute":
        op = payload.get("op")
        if not isinstance(op, str) or not op:
            raise _record_error(
                index, name, "compute record missing required field 'op'"
            )
        category = payload.get("category", "general")
        if not isinstance(category, str) or not category:
            raise _record_error(index, name, "field 'category' must be a string")
        numbers = {
            fieldname: _require_finite_number(
                payload.get(fieldname, 0.0),
                index=index,
                name=name,
                fieldname=fieldname,
            )
            for fieldname in ("flops", "mem_bytes", "out_elements")
        }
        return TraceRecord(
            name=name,
            kind="compute",
            duration=duration,
            op=op,
            category=category,
            device=device,
            deps=tuple(deps_raw),
            **numbers,
        )

    comm_bytes = _require_finite_number(
        payload.get("comm_bytes", 0.0), index=index, name=name, fieldname="comm_bytes"
    )
    channel = payload.get("channel", "p2p")
    if not isinstance(channel, str) or not channel:
        raise _record_error(index, name, "field 'channel' must be a string")
    return TraceRecord(
        name=name,
        kind="comm",
        duration=duration,
        comm_bytes=comm_bytes,
        channel=channel,
        device=device,
        deps=tuple(deps_raw),
    )


def trace_from_dict(payload: object) -> Trace:
    """Validate a parsed JSON payload into a :class:`Trace`.

    Args:
        payload: The parsed ``{"format", "version", "records", ...}`` object.

    Returns:
        The validated trace.

    Raises:
        TraceError: On a wrong format tag, an unsupported version, or any
            malformed record (message names the record: ``record #i
            (name='x'): ...``).
    """
    if not isinstance(payload, dict):
        raise TraceError(
            f"trace payload must be an object, got {type(payload).__name__}"
        )
    fmt = payload.get("format")
    if fmt != TRACE_FORMAT:
        raise TraceError(
            f"trace payload has format {fmt!r}, expected {TRACE_FORMAT!r}"
        )
    version = payload.get("version")
    if version != TRACE_VERSION:
        raise TraceError(
            f"trace payload has version {version!r}; this build reads "
            f"version {TRACE_VERSION}"
        )
    records_raw = payload.get("records")
    if not isinstance(records_raw, list):
        raise TraceError("trace payload is missing the 'records' list")
    records = tuple(
        _record_from_dict(record, index) for index, record in enumerate(records_raw)
    )
    seen: Dict[str, int] = {}
    for index, record in enumerate(records):
        if record.name in seen:
            raise _record_error(
                index,
                record.name,
                f"duplicate record name (first used by record #{seen[record.name]})",
            )
        seen[record.name] = index
    for index, record in enumerate(records):
        for dep in record.deps:
            if dep not in seen:
                raise _record_error(
                    index, record.name, f"dep '{dep}' names no record in this trace"
                )
    metadata = payload.get("metadata", {})
    if not isinstance(metadata, dict):
        raise TraceError("trace 'metadata' must be an object when present")
    return Trace(records=records, metadata=dict(metadata))


def trace_to_dict(trace: Trace) -> Dict[str, object]:
    """Serialise a :class:`Trace` to its JSON payload (inverse of
    :func:`trace_from_dict`)."""
    payload: Dict[str, object] = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "records": [record.to_dict() for record in trace.records],
    }
    if trace.metadata:
        payload["metadata"] = dict(trace.metadata)
    return payload


def load_trace(path: "str | os.PathLike[str]") -> Trace:
    """Read and validate a trace JSON file.

    Args:
        path: Filesystem path of the trace.

    Returns:
        The validated :class:`Trace`.

    Raises:
        TraceError: When the file cannot be read, is not valid JSON, or
            fails schema validation.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"trace file {os.fspath(path)!r} is not valid JSON: {exc}"
                )
    except OSError as exc:
        raise TraceError(f"cannot read trace file {os.fspath(path)!r}: {exc}")
    return trace_from_dict(payload)


def save_trace(trace: Trace, path: "str | os.PathLike[str]") -> None:
    """Write a trace as deterministic (sorted-key, indented) JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_dict(trace), handle, indent=2, sort_keys=True)
        handle.write("\n")


def records_by_category(records: Sequence[TraceRecord]) -> Dict[str, List[TraceRecord]]:
    """Group compute records by cost category (comm records under
    ``"comm"``)."""
    grouped: Dict[str, List[TraceRecord]] = {}
    for record in records:
        key = record.category if record.kind == "compute" else "comm"
        grouped.setdefault(key, []).append(record)
    return grouped
