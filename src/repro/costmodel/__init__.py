"""Pluggable per-op cost models for the simulator.

The simulator prices every kernel and transfer through a *cost model*.  The
default is the analytic roofline the paper's evaluation uses (bit-exact
with the pre-subsystem pricing); ``table`` and ``fitted`` models calibrate
that pricing from measured traces, and third parties can register further
kinds through the ``repro.cost_models`` entry-point group.  The written
contract — interface, trace schema, cache-key semantics, registration —
lives in ``docs/cost-models.md`` and ``docs/trace-schema.md``.

Typical calibration loop::

    from repro.costmodel import fit_cost_model, load_trace, replay_trace

    trace = load_trace("trace.json")
    table = fit_cost_model(trace, "table")
    report = replay_trace(trace, {"roofline": resolve_cost_model("roofline"),
                                  "table": table})

then activate the calibrated model for a compile either through the config
knobs (``ExecutorConfig(cost_model=...)`` / ``PlannerConfig(cost_model=...)``
/ ``repro.compile(..., cost_model=...)``) or lexically::

    with use_cost_model(table):
        result = repro.compile(graph, "tofu", machine, num_workers=8)
"""

from repro.costmodel.base import (
    CostModel,
    OpSample,
    active_cost_model,
    current_cost_model,
    use_cost_model,
)
from repro.costmodel.calibrate import (
    cost_model_from_dict,
    fit_cost_model,
    load_cost_model,
    save_cost_model,
)
from repro.costmodel.fitted import FittedCostModel
from repro.costmodel.registry import (
    CostModelSpec,
    available_cost_models,
    configured_cost_model,
    cost_model_cache_token,
    get_cost_model_spec,
    load_entry_point_cost_models,
    register_cost_model,
    resolve_cost_model,
    unregister_cost_model,
)
from repro.costmodel.replay import render_report, replay_trace, write_report
from repro.costmodel.roofline import RooflineCostModel, default_roofline
from repro.costmodel.table import TableCostModel
from repro.costmodel.trace import (
    Trace,
    TraceRecord,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.errors import CostModelError, TraceError

__all__ = [
    "CostModel",
    "CostModelError",
    "CostModelSpec",
    "FittedCostModel",
    "OpSample",
    "RooflineCostModel",
    "TableCostModel",
    "Trace",
    "TraceError",
    "TraceRecord",
    "active_cost_model",
    "available_cost_models",
    "configured_cost_model",
    "cost_model_cache_token",
    "cost_model_from_dict",
    "current_cost_model",
    "default_roofline",
    "fit_cost_model",
    "get_cost_model_spec",
    "load_cost_model",
    "load_entry_point_cost_models",
    "load_trace",
    "register_cost_model",
    "render_report",
    "replay_trace",
    "resolve_cost_model",
    "save_cost_model",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
    "unregister_cost_model",
    "use_cost_model",
    "write_report",
]
