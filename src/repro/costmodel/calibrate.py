"""Calibration: fit a cost model from a measured trace and persist it.

:func:`fit_cost_model` turns a trace into a ``table`` or ``fitted`` model;
:func:`save_cost_model` / :func:`load_cost_model` round-trip any model
through a versioned JSON envelope (``"format": "tofu-cost-model"``), so a
model calibrated once can price later compiles via
``ExecutorConfig(cost_model="/path/to/model.json")`` or the CLI's
``--cost-model`` flag.  The quickstart lives in the README ("Calibrating
the simulator"); the benchmark that re-runs Fig-10 pricing under a
calibrated model is ``benchmarks/bench_calibrated.py``.
"""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.costmodel.base import CostModel
from repro.costmodel.fitted import FittedCostModel
from repro.costmodel.roofline import RooflineCostModel
from repro.costmodel.table import TableCostModel
from repro.costmodel.trace import Trace, load_trace
from repro.errors import CostModelError

__all__ = [
    "MODEL_FORMAT",
    "MODEL_VERSION",
    "cost_model_from_dict",
    "fit_cost_model",
    "load_cost_model",
    "save_cost_model",
]

#: Value of the ``"format"`` tag every saved cost model carries.
MODEL_FORMAT = "tofu-cost-model"

#: Current saved-model envelope version.
MODEL_VERSION = 1

_FITTABLE = {"table": TableCostModel.fit, "fitted": FittedCostModel.fit}


def fit_cost_model(trace: "Trace | str | os.PathLike[str]", kind: str) -> CostModel:
    """Calibrate a cost model of ``kind`` from a measured trace.

    Args:
        trace: A validated :class:`Trace`, or a path to a trace JSON file.
        kind: ``"table"`` or ``"fitted"``.

    Returns:
        The calibrated model.

    Raises:
        CostModelError: For an unknown ``kind`` or a trace the model kind
            cannot be fitted from.
        TraceError: When ``trace`` is a path to a malformed trace file.
    """
    if kind not in _FITTABLE:
        known = ", ".join(sorted(_FITTABLE))
        raise CostModelError(
            f"cannot fit a cost model of kind {kind!r} (fittable kinds: {known})"
        )
    if not isinstance(trace, Trace):
        trace = load_trace(trace)
    return _FITTABLE[kind](trace)


def cost_model_from_dict(payload: Dict[str, object]) -> CostModel:
    """Rebuild a cost model from its ``to_dict`` payload.

    Dispatches on the payload's ``"model"`` key (``roofline`` / ``table`` /
    ``fitted``).

    Raises:
        CostModelError: For an unknown or missing model kind, or a payload
            the named kind rejects.
    """
    if not isinstance(payload, dict):
        raise CostModelError(
            f"cost-model payload must be an object, got {type(payload).__name__}"
        )
    kind = payload.get("model")
    if kind == "roofline":
        return RooflineCostModel()
    if kind == "table":
        return TableCostModel.from_dict(payload)
    if kind == "fitted":
        return FittedCostModel.from_dict(payload)
    raise CostModelError(
        f"cost-model payload names unknown model kind {kind!r} "
        f"(known: fitted, roofline, table)"
    )


def save_cost_model(model: CostModel, path: "str | os.PathLike[str]") -> None:
    """Write ``model`` to ``path`` as a versioned JSON envelope.

    The envelope is ``{"format": "tofu-cost-model", "version": 1,
    "cost_model": <model.to_dict()>}``, serialised deterministically.
    """
    payload = {
        "format": MODEL_FORMAT,
        "version": MODEL_VERSION,
        "cost_model": model.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_cost_model(path: "str | os.PathLike[str]") -> CostModel:
    """Read a cost model saved by :func:`save_cost_model`.

    Args:
        path: Filesystem path of the saved model.

    Returns:
        The reconstructed model.

    Raises:
        CostModelError: When the file cannot be read, is not valid JSON,
            the envelope tags are wrong, or the inner payload is malformed.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CostModelError(
                    f"cost-model file {os.fspath(path)!r} is not valid JSON: {exc}"
                )
    except OSError as exc:
        raise CostModelError(
            f"cannot read cost-model file {os.fspath(path)!r}: {exc}"
        )
    if not isinstance(payload, dict) or payload.get("format") != MODEL_FORMAT:
        raise CostModelError(
            f"file {os.fspath(path)!r} is not a saved cost model "
            f"(expected format tag {MODEL_FORMAT!r})"
        )
    if payload.get("version") != MODEL_VERSION:
        raise CostModelError(
            f"saved cost model has version {payload.get('version')!r}; this "
            f"build reads version {MODEL_VERSION}"
        )
    return cost_model_from_dict(payload.get("cost_model"))
