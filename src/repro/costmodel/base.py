"""The :class:`CostModel` contract — what a pricing backend must implement.

A cost model answers two questions the lowering passes ask while pricing a
program: how long does one kernel launch take (:meth:`CostModel.op_time`,
fed an :class:`repro.sim.costmodel.OpSample` of operator features), and —
optionally — how long does one transfer take (:meth:`CostModel.comm_time`;
returning ``None`` keeps the simulator's link-bandwidth pricing).  Models
are content-addressed (:meth:`CostModel.signature`) so the plan and program
caches can fold "which model priced this" into their keys, and
serialisable (:meth:`CostModel.to_dict`) so a calibrated model travels as
JSON.  The full written contract lives in ``docs/cost-models.md``.

Activation is scoped, not global: :func:`use_cost_model` sets the model for
the current context (a :mod:`contextvars` context, so concurrent compile
threads do not leak models into each other), and the facades' ``cost_model``
knobs delegate to it.  :func:`current_cost_model` reports what is in effect,
defaulting to the built-in roofline.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.caching import content_key
from repro.sim.costmodel import _ACTIVE_COST_MODEL, OpSample, active_cost_model
from repro.sim.device import DeviceSpec, Link, MachineSpec

__all__ = [
    "CostModel",
    "OpSample",
    "active_cost_model",
    "current_cost_model",
    "use_cost_model",
]


class CostModel(abc.ABC):
    """Per-op (and optionally per-transfer) pricing for the simulator.

    Subclasses implement :meth:`op_time` and :meth:`to_dict`; everything
    else has a sensible default.  Instances must be immutable once priced
    into a program — the caches trust :meth:`signature` to capture the whole
    model.
    """

    #: Registry key and provenance label of this model kind.
    name: str = "abstract"

    @abc.abstractmethod
    def op_time(
        self, sample: OpSample, device: DeviceSpec, machine: MachineSpec
    ) -> float:
        """Predicted execution time (seconds) of one kernel launch.

        Args:
            sample: Operator features, already scaled to the per-device
                shard under partitioned execution.
            device: The device the kernel runs on.
            machine: The machine (or cluster) model, for launch overheads.

        Returns:
            The predicted kernel time in seconds (must be finite and
            non-negative).
        """

    def comm_time(
        self,
        comm_bytes: float,
        *,
        link: Optional[Link] = None,
        channel: Optional[str] = None,
    ) -> Optional[float]:
        """Predicted transfer time (seconds) of one communication task.

        Args:
            comm_bytes: Transfer volume in bytes.
            link: The resolved :class:`repro.sim.device.Link` the transfer
                crosses, when the emitter knows it.
            channel: The channel name (``"p2p"``/``"cpu"``/``"net"``) under
                the legacy spelling.

        Returns:
            The predicted transfer time, or ``None`` to keep the default
            link pricing (``link.transfer_time(comm_bytes)``) — which is
            what this base implementation always does.
        """
        return None

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable content of the model (must carry a ``"model"``
        key naming the kind; inverse of
        :func:`repro.costmodel.cost_model_from_dict`)."""

    def signature(self) -> str:
        """Content address of this model: ``"<name>:<sha256 of to_dict()>"``.

        Folded into plan/program cache keys when the model prices
        differently from the default roofline, so two models that differ
        anywhere can never collide on one cache entry.
        """
        return f"{self.name}:{content_key(self.to_dict())}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(signature={self.signature()!r})"


def current_cost_model() -> CostModel:
    """The cost model in effect for this context (the default roofline when
    none was activated)."""
    model = _ACTIVE_COST_MODEL.get()
    if model is not None:
        return model
    from repro.costmodel.roofline import default_roofline

    return default_roofline()


@contextmanager
def use_cost_model(model: Optional[CostModel]) -> Iterator[Optional[CostModel]]:
    """Activate ``model`` for the duration of the ``with`` block.

    Every kernel-costing and comm-emission pass running inside the block
    prices through ``model``; the previous model (usually none) is restored
    on exit, even across exceptions.  ``None`` is a no-op context, so
    callers can write ``with use_cost_model(maybe_model):`` unconditionally.

    Args:
        model: The model to activate, or ``None`` to leave pricing as-is.

    Yields:
        The model passed in (for ``with ... as model`` spellings).

    Raises:
        CostModelError: When ``model`` is neither a :class:`CostModel` nor
            ``None``.
    """
    if model is None:
        yield None
        return
    if not isinstance(model, CostModel):
        from repro.errors import CostModelError

        raise CostModelError(
            f"use_cost_model needs a CostModel instance, got "
            f"{type(model).__name__}; resolve names/paths first with "
            f"repro.costmodel.resolve_cost_model(...)"
        )
    token = _ACTIVE_COST_MODEL.set(model)
    try:
        yield model
    finally:
        _ACTIVE_COST_MODEL.reset(token)
