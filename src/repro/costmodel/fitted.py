"""Fitted cost model: per-category least squares over operator features.

For each cost category the model fits ``duration ≈ a·flops + b·mem_bytes +
c`` by ordinary least squares (normal equations, pure python — no numpy in
the dependency budget).  Degenerate design matrices fall back through an
ordered chain of smaller feature sets (flops+const, bytes+const, const)
until one is solvable, so a category whose records all have identical flops
still fits.  Categories unseen in the trace use a global fit over all
compute records; with no usable fit at all, pricing defers to the roofline.

Comm records fit ``duration ≈ a·bytes + b`` per channel the same way.
Predictions clamp at zero (a fitted line can go negative below the measured
range; a kernel cannot).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.costmodel.base import CostModel, OpSample
from repro.costmodel.roofline import default_roofline
from repro.costmodel.trace import Trace, TraceRecord
from repro.errors import CostModelError
from repro.sim.device import DeviceSpec, Link, MachineSpec

__all__ = ["FittedCostModel"]

#: Feature-set fallback chain: names are keys into the feature extractor.
_FEATURE_SETS: Tuple[Tuple[str, ...], ...] = (
    ("flops", "mem_bytes", "const"),
    ("flops", "const"),
    ("mem_bytes", "const"),
    ("const",),
)

#: Coefficients of one fit: (feature names, weights).
_Fit = Tuple[Tuple[str, ...], Tuple[float, ...]]


def _features(record: TraceRecord) -> Dict[str, float]:
    return {"flops": record.flops, "mem_bytes": record.mem_bytes, "const": 1.0}


def _sample_features(sample: OpSample) -> Dict[str, float]:
    return {"flops": sample.flops, "mem_bytes": sample.mem_bytes, "const": 1.0}


def _solve(matrix: List[List[float]], rhs: List[float]) -> Optional[List[float]]:
    """Gaussian elimination with partial pivoting; None when singular."""
    n = len(matrix)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    scale = max(abs(v) for row in matrix for v in row) or 1.0
    for col in range(n):
        pivot_row = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot_row][col]) < 1e-12 * scale:
            return None
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        for row in range(col + 1, n):
            factor = aug[row][col] / pivot
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    result = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = aug[row][n] - sum(aug[row][k] * result[k] for k in range(row + 1, n))
        result[row] = acc / aug[row][row]
    return result


def _least_squares(
    rows: Sequence[Dict[str, float]],
    targets: Sequence[float],
    names: Tuple[str, ...],
) -> Optional[Tuple[float, ...]]:
    """Solve the normal equations for the given feature subset."""
    n = len(names)
    if len(rows) < n:
        return None
    # Equilibrate columns before forming the normal equations: flops (~1e9)
    # next to const (1.0) would otherwise make well-posed systems fail the
    # singularity test (and genuinely singular ones pass it).
    scales = [
        max(abs(row[name]) for row in rows) or 1.0 for name in names
    ]
    xtx = [[0.0] * n for _ in range(n)]
    xty = [0.0] * n
    for row, target in zip(rows, targets):
        values = [row[name] / s for name, s in zip(names, scales)]
        for i in range(n):
            xty[i] += values[i] * target
            for j in range(n):
                xtx[i][j] += values[i] * values[j]
    solution = _solve(xtx, xty)
    if solution is None:
        return None
    return tuple(w / s for w, s in zip(solution, scales))


def _fit_records(records: Sequence[TraceRecord]) -> Optional[_Fit]:
    """Fit the first solvable feature set from the fallback chain."""
    rows = [_features(r) for r in records]
    targets = [r.duration for r in records]
    for names in _FEATURE_SETS:
        weights = _least_squares(rows, targets, names)
        if weights is not None:
            return (names, weights)
    return None


def _predict(fit: _Fit, features: Dict[str, float]) -> float:
    names, weights = fit
    return max(0.0, sum(w * features[name] for name, w in zip(names, weights)))


class FittedCostModel(CostModel):
    """Least-squares pricing fitted from a measured trace.

    Build one with :meth:`fit` (or :func:`repro.costmodel.fit_cost_model`).
    Lookup order per op: category fit → global fit → roofline fallback.
    """

    name = "fitted"

    def __init__(
        self,
        *,
        category_fits: Dict[str, _Fit],
        global_fit: Optional[_Fit] = None,
        comm_fits: Optional[Dict[str, Tuple[float, float]]] = None,
    ):
        """Construct from precomputed fits (normally via :meth:`fit`).

        Args:
            category_fits: Per-category (feature names, weights) fits.
            global_fit: Fit over all compute records, the fallback tier for
                unseen categories.
            comm_fits: Per-channel ``(slope, intercept)`` fits over bytes.

        Raises:
            CostModelError: When no fit of any kind is provided.
        """
        if not category_fits and global_fit is None and not comm_fits:
            raise CostModelError(
                "fitted cost model has no coefficients; fit it from a "
                "non-empty trace (see FittedCostModel.fit)"
            )
        self._category_fits = dict(category_fits)
        self._global_fit = global_fit
        self._comm_fits = dict(comm_fits or {})
        self._fallback = default_roofline()

    @classmethod
    def fit(cls, trace: Trace) -> "FittedCostModel":
        """Fit per-category + global + per-channel coefficients from a trace.

        Args:
            trace: The measured trace.

        Returns:
            A :class:`FittedCostModel`.

        Raises:
            CostModelError: When the trace yields no solvable fit at all.
        """
        compute = trace.compute_records()
        by_category: Dict[str, List[TraceRecord]] = {}
        for record in compute:
            by_category.setdefault(record.category, []).append(record)
        category_fits = {
            category: fit
            for category, records in by_category.items()
            for fit in [_fit_records(records)]
            if fit is not None
        }
        global_fit = _fit_records(compute) if compute else None

        comm_fits: Dict[str, Tuple[float, float]] = {}
        by_channel: Dict[str, List[TraceRecord]] = {}
        for record in trace.comm_records():
            by_channel.setdefault(record.channel, []).append(record)
        for channel, records in by_channel.items():
            rows = [{"mem_bytes": r.comm_bytes, "const": 1.0} for r in records]
            targets = [r.duration for r in records]
            for names in (("mem_bytes", "const"), ("const",)):
                weights = _least_squares(rows, targets, names)
                if weights is not None:
                    slope = weights[0] if "mem_bytes" in names else 0.0
                    intercept = weights[-1]
                    comm_fits[channel] = (slope, intercept)
                    break
        if not category_fits and global_fit is None and not comm_fits:
            raise CostModelError(
                "cannot fit a fitted cost model from this trace "
                "(no solvable feature set)"
            )
        return cls(
            category_fits=category_fits,
            global_fit=global_fit,
            comm_fits=comm_fits,
        )

    def op_time(
        self, sample: OpSample, device: DeviceSpec, machine: MachineSpec
    ) -> float:
        """Fitted kernel time for ``sample`` (category fit, else global fit,
        else roofline).

        Args:
            sample: Operator features of the launch.
            device: Target device (roofline fallback only).
            machine: Machine model (roofline fallback only).

        Returns:
            The predicted kernel time in seconds (clamped at zero).
        """
        fit = self._category_fits.get(sample.category) or self._global_fit
        if fit is not None:
            return _predict(fit, _sample_features(sample))
        return self._fallback.op_time(sample, device, machine)

    def comm_time(
        self,
        comm_bytes: float,
        *,
        link: Optional[Link] = None,
        channel: Optional[str] = None,
    ) -> Optional[float]:
        """Fitted transfer time ``a·bytes + b`` for the channel, or ``None``
        when the channel was never measured.

        Args:
            comm_bytes: Transfer volume in bytes.
            link: Resolved link (its ``kind`` keys the fit when ``channel``
                is not given).
            channel: Channel name keying the fit.

        Returns:
            The predicted transfer time (clamped at zero), or ``None``.
        """
        key = channel or (link.kind if link is not None else None)
        if key is None or key not in self._comm_fits:
            return None
        slope, intercept = self._comm_fits[key]
        return max(0.0, slope * comm_bytes + intercept)

    def to_dict(self) -> Dict[str, object]:
        """Serialised coefficients (inverse of :meth:`from_dict`)."""
        return {
            "model": self.name,
            "category_fits": {
                category: {"features": list(names), "weights": list(weights)}
                for category, (names, weights) in sorted(self._category_fits.items())
            },
            "global_fit": (
                {
                    "features": list(self._global_fit[0]),
                    "weights": list(self._global_fit[1]),
                }
                if self._global_fit is not None
                else None
            ),
            "comm_fits": {
                channel: list(fit)
                for channel, fit in sorted(self._comm_fits.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FittedCostModel":
        """Rebuild a fitted model from :meth:`to_dict` output.

        Raises:
            CostModelError: When the payload is not a fitted-model payload.
        """
        if payload.get("model") != cls.name:
            raise CostModelError(
                f"payload is not a fitted cost model: model={payload.get('model')!r}"
            )

        def unpack(raw: object) -> _Fit:
            if not isinstance(raw, dict):
                raise CostModelError("fitted payload fit entries must be objects")
            return (
                tuple(str(n) for n in raw["features"]),
                tuple(float(w) for w in raw["weights"]),
            )

        raw_cats = payload.get("category_fits", {})
        if not isinstance(raw_cats, dict):
            raise CostModelError("fitted payload 'category_fits' must be an object")
        raw_global = payload.get("global_fit")
        raw_comm = payload.get("comm_fits", {})
        if not isinstance(raw_comm, dict):
            raise CostModelError("fitted payload 'comm_fits' must be an object")
        return cls(
            category_fits={c: unpack(f) for c, f in raw_cats.items()},
            global_fit=unpack(raw_global) if raw_global is not None else None,
            comm_fits={
                ch: (float(fit[0]), float(fit[1])) for ch, fit in raw_comm.items()
            },
        )
