"""The built-in roofline cost model — the default pricing, as a plugin.

:class:`RooflineCostModel` wraps :func:`repro.sim.costmodel.kernel_time`
behind the :class:`~repro.costmodel.base.CostModel` interface, producing
bit-identical numbers to the inline default path (same arithmetic, same
constants).  It exists so the registry has a ``"roofline"`` entry, so replay
can score the roofline against measured traces, and so callers can force
roofline pricing inside a scope where another model is active.

:data:`DEFAULT_COST_MODEL_SIGNATURE` is the signature of the parameterless
roofline; configs carrying it (the default) contribute nothing to cache
keys, which is what keeps every pre-existing cache entry valid.
"""

from __future__ import annotations

from typing import Dict

from repro.costmodel.base import CostModel, OpSample
from repro.sim.costmodel import kernel_time
from repro.sim.device import DeviceSpec, MachineSpec

__all__ = [
    "DEFAULT_COST_MODEL_SIGNATURE",
    "RooflineCostModel",
    "default_roofline",
]


class RooflineCostModel(CostModel):
    """Analytic roofline pricing (the simulator's default, bit-exact).

    ``op_time`` is ``max(flops / (peak_flops · efficiency),
    mem_bytes / mem_bandwidth) + launch_overhead`` with per-category
    efficiency factors and a saturation ramp on small outputs — exactly the
    arithmetic of :func:`repro.sim.costmodel.kernel_time`.  ``comm_time``
    returns ``None``: transfers keep the simulator's link pricing.
    """

    name = "roofline"

    def op_time(
        self, sample: OpSample, device: DeviceSpec, machine: MachineSpec
    ) -> float:
        """Roofline kernel-time estimate for ``sample`` on ``device``.

        Args:
            sample: Operator features (flops/bytes/output parallelism).
            device: Device whose peak FLOPs and bandwidth bound the kernel.
            machine: Machine model supplying the launch overhead.

        Returns:
            The estimated kernel time in seconds.
        """
        return kernel_time(
            sample.flops,
            sample.mem_bytes,
            device,
            machine,
            category=sample.category,
            parallel_elements=sample.out_elements,
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialised form: ``{"model": "roofline"}`` (the model has no
        parameters beyond the machine spec it is handed at pricing time)."""
        return {"model": self.name}


_DEFAULT = RooflineCostModel()


def default_roofline() -> RooflineCostModel:
    """The shared default :class:`RooflineCostModel` instance."""
    return _DEFAULT


#: Signature of the parameterless roofline — configs set to this (or to the
#: string ``"roofline"``) leave cache keys untouched.
DEFAULT_COST_MODEL_SIGNATURE = _DEFAULT.signature()
