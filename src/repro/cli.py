"""Command-line interface.

Examples::

    tofu-repro describe conv2d
    tofu-repro partition --model wresnet --depth 50 --widen 4 --batch 32 --workers 8
    tofu-repro simulate --model rnn --layers 6 --hidden 4096 --batch 256 --workers 8
    tofu-repro coverage
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.api import describe_operator, partition_and_simulate, partition_graph
from repro.models.mlp import build_mlp
from repro.models.resnet import build_wide_resnet
from repro.models.rnn import build_rnn
from repro.ops.catalog import mxnet_catalog_counts
from repro.tdl.registry import GLOBAL_REGISTRY


def _build_model(args) -> "ModelBundle":
    if args.model == "mlp":
        return build_mlp(
            batch_size=args.batch, hidden_dim=args.hidden, num_layers=args.layers
        )
    if args.model == "rnn":
        return build_rnn(
            batch_size=args.batch, hidden_size=args.hidden, num_layers=args.layers
        )
    if args.model == "wresnet":
        return build_wide_resnet(
            depth=args.depth, widen=args.widen, batch_size=args.batch
        )
    raise SystemExit(f"unknown model {args.model!r}")


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=["mlp", "rnn", "wresnet"], default="mlp")
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--hidden", type=int, default=1024)
    parser.add_argument("--layers", type=int, default=3)
    parser.add_argument("--depth", type=int, default=50)
    parser.add_argument("--widen", type=int, default=4)
    parser.add_argument("--workers", type=int, default=8)


def cmd_describe(args) -> int:
    strategies = describe_operator(args.operator)
    print(f"{args.operator}: {len(strategies)} partition-n-reduce strategies")
    for strategy in strategies:
        print(" ", strategy.describe())
    return 0


def cmd_partition(args) -> int:
    bundle = _build_model(args)
    plan = partition_graph(bundle.graph, args.workers)
    print(f"model: {bundle.name} ({bundle.graph.num_nodes()} operators)")
    print(plan.summary())
    for weight in bundle.weights[:10]:
        ndim = len(bundle.graph.tensor(weight).shape)
        print(f"  {weight}: {plan.describe_tensor(weight, ndim)}")
    return 0


def cmd_simulate(args) -> int:
    bundle = _build_model(args)
    report = partition_and_simulate(bundle.graph, args.workers)
    print(f"model: {bundle.name}")
    print(report.summary())
    print(f"throughput: {report.throughput(bundle.batch_size):.1f} samples/s")
    return 0


def cmd_coverage(args) -> int:
    own = GLOBAL_REGISTRY.coverage_report()
    mxnet = mxnet_catalog_counts()
    print("TDL coverage (this repository's operator library):")
    for key, value in own.items():
        print(f"  {key}: {value}")
    print("TDL coverage (reconstructed MXNet v0.11 catalogue, Sec 4.1):")
    for key, value in mxnet.items():
        print(f"  {key}: {value}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="tofu-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_describe = sub.add_parser("describe", help="show an operator's strategies")
    p_describe.add_argument("operator")
    p_describe.set_defaults(func=cmd_describe)

    p_partition = sub.add_parser("partition", help="search a partition plan")
    _add_model_args(p_partition)
    p_partition.set_defaults(func=cmd_partition)

    p_simulate = sub.add_parser("simulate", help="partition and simulate a model")
    _add_model_args(p_simulate)
    p_simulate.set_defaults(func=cmd_simulate)

    p_coverage = sub.add_parser("coverage", help="TDL operator coverage statistics")
    p_coverage.set_defaults(func=cmd_coverage)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
