"""Command-line interface, built on ``repro.compile`` and the
:class:`repro.planner.Planner` / :class:`repro.runtime.Executor` facades.

``compile`` is the strategy-first entry point: ``--strategy`` takes any
expression of the combinator mini-language (``tofu``, ``single``,
``placement``, ``swap``, ``dp:<groups>``,
``pipeline:<stages>[:<schedule>[:<microbatches>]]``, composed with ``/``) or
``auto`` for the bounded sweep; ``--dry-run`` shows the lowering without
planning or simulating, and ``--save`` persists the compiled model as JSON.

``partition`` and ``simulate`` remain for facade-level use: a ``--backend``
(any registered search backend — see ``tofu-repro backends``), a
``--cache-dir`` for the persistent plan store, ``--jobs`` for the parallel
candidate search, and (``simulate``) an ``--executor`` for any registered
execution backend.

Examples::

    tofu-repro describe conv2d
    tofu-repro backends
    tofu-repro executors
    tofu-repro compile --model rnn --strategy dp:2/pipeline:2:1f1b:4/tofu \\
        --workers 8
    tofu-repro compile --model mlp --strategy auto --workers 8
    tofu-repro tune --model rnn --workers 8 --max-candidates 24 --jobs 4
    tofu-repro tune --model rnn --preset p2_8xlarge_x4 --max-seconds 30 \\
        --profile
    tofu-repro compile --model mlp --strategy dp:2/tofu --dry-run
    tofu-repro partition --model wresnet --depth 50 --widen 4 --batch 32 --workers 8
    tofu-repro partition --model mlp --backend spartan --workers 8
    tofu-repro simulate --model rnn --layers 6 --hidden 4096 --batch 256 \\
        --workers 8 --cache-dir ~/.cache/tofu-plans --jobs 4
    tofu-repro simulate --model mlp --executor swap --workers 8
    tofu-repro simulate --model rnn --executor pipeline --workers 4 \\
        --stages 4 --microbatches 8 --schedule 1f1b
    tofu-repro simulate --model rnn --executor hybrid --workers 8 \\
        --replica-groups 2 --inner tofu-partitioned
    tofu-repro compile --model rnn --machines 2 --workers 4 \\
        --strategy machines:2/pipeline:2:1f1b:4/tofu
    tofu-repro compile --model rnn --preset p2_8xlarge_x4 --strategy auto
    tofu-repro cache export --cache-dir ~/.cache/tofu-plans --output plans.json
    tofu-repro cache import --cache-dir ~/.cache/tofu-plans --input plans.json
    tofu-repro coverage
    tofu-repro replay --trace trace.json --models roofline,table \\
        --output report.json
    tofu-repro replay --trace trace.json --fit table --save-model table.json
    tofu-repro compile --model mlp --cost-model table.json --workers 8
    tofu-repro compile --model rnn --strategy pipeline:2:1f1b:4 --workers 4 \\
        --save model.json
    tofu-repro verify model.json
    tofu-repro verify <cache-key> --program-cache-dir ~/.cache/tofu-programs

``verify`` statically checks a saved compiled model (or a cached lowered
program, addressed by its cache key) with the ``repro.analysis`` checkers
and exits non-zero on findings; every finding and error carries a stable
code (``ANA003_CYCLIC_SCHEDULE`` style — see ``docs/verifier.md``).

``replay`` scores cost models against a measured trace (per-op-class
MAPE/p50/p95 — see ``docs/trace-schema.md``) and can fit + save a calibrated
model; ``--cost-model`` on ``compile``/``simulate`` prices the run with a
registry name (``roofline``, ``table:trace=trace.json``) or a saved-model
file.

Every model-building command accepts ``--machines N`` (a cluster of N
identical K80 boxes over a 10 Gb/s network) or ``--preset <name>`` (a named
topology such as ``p2_8xlarge_x4``); ``--workers`` is the GPU count per
machine.  ``cache export``/``cache import`` move the on-disk plan store
between machines — content addresses are host-independent, so bundles import
losslessly.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import describe_operator
from repro.baselines.evaluation import round_robin_placement
from repro.compiler import compile_model
from repro.errors import ReproError
from repro.models.mlp import build_mlp
from repro.models.resnet import build_wide_resnet
from repro.models.rnn import build_rnn
from repro.ops.catalog import mxnet_catalog_counts
from repro.planner import Planner, PlannerConfig, available_backends, get_backend
from repro.runtime import (
    Executor,
    ExecutorConfig,
    ProgramCache,
    available_execution_backends,
    get_execution_backend,
)
from repro.sim.device import (
    TOPOLOGY_PRESETS,
    cluster_of,
    k80_8gpu_machine,
    slice_topology,
    topology_preset,
)
from repro.strategy import (
    auto_candidates,
    combinator_descriptions,
    lower_strategy,
    parse_strategy,
)
from repro.tdl.registry import GLOBAL_REGISTRY


def _build_model(args) -> "ModelBundle":
    if args.model == "mlp":
        return build_mlp(
            batch_size=args.batch, hidden_dim=args.hidden, num_layers=args.layers
        )
    if args.model == "rnn":
        return build_rnn(
            batch_size=args.batch, hidden_size=args.hidden, num_layers=args.layers
        )
    if args.model == "wresnet":
        return build_wide_resnet(
            depth=args.depth, widen=args.widen, batch_size=args.batch
        )
    raise SystemExit(f"unknown model {args.model!r}")


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=["mlp", "rnn", "wresnet"], default="mlp")
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--hidden", type=int, default=1024)
    parser.add_argument("--layers", type=int, default=3)
    parser.add_argument("--depth", type=int, default=50)
    parser.add_argument("--widen", type=int, default=4)
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="GPUs per machine (total devices = workers x machines)",
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=1,
        help="machines in the modelled cluster (>1 builds a ClusterSpec of "
        "identical K80 boxes over a 10 Gb/s network)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(TOPOLOGY_PRESETS),
        default=None,
        help="named cluster topology (overrides --workers/--machines)",
    )


def _build_topology(args):
    if getattr(args, "preset", None):
        return topology_preset(args.preset)
    return cluster_of(k80_8gpu_machine(args.workers), max(1, args.machines))


def _add_planner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="tofu",
        help="partition-search backend (see the `backends` command)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent plan cache (default: in-memory only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="processes for the parallel candidate search",
    )


def _make_planner(args) -> Planner:
    return Planner(
        PlannerConfig(
            backend=args.backend, cache_dir=args.cache_dir, jobs=args.jobs
        )
    )


def _add_cost_model_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cost-model",
        default=None,
        help="pricing model: a registry name (roofline, "
        "table:trace=/path.json, fitted:trace=/path.json) or a saved-model "
        "JSON file from `replay --save-model`",
    )


def _cost_model_context(args):
    """The ``use_cost_model`` scope of a command's ``--cost-model`` flag
    (a no-op context when the flag is absent or names the default)."""
    from repro.costmodel import configured_cost_model, use_cost_model

    return use_cost_model(configured_cost_model(getattr(args, "cost_model", None)))


def cmd_describe(args) -> int:
    strategies = describe_operator(args.operator)
    print(f"{args.operator}: {len(strategies)} partition-n-reduce strategies")
    for strategy in strategies:
        print(" ", strategy.describe())
    return 0


def _print_combinators() -> None:
    print("strategy combinators (compose with '/', see `compile --strategy`):")
    for name, description in combinator_descriptions().items():
        print(f"  {name:<44} {description}")


def cmd_backends(args) -> int:
    print("registered search backends:")
    for name in available_backends():
        spec = get_backend(name)
        extra = " [parallel candidate search]" if spec.supports_factor_orders else ""
        print(f"  {name:<14} {spec.description}{extra}")
    _print_combinators()
    return 0


def cmd_executors(args) -> int:
    print("registered execution backends:")
    for name in available_execution_backends():
        spec = get_execution_backend(name)
        extra = " [needs partition plan]" if spec.requires_plan else ""
        print(f"  {name:<17} {spec.description}{extra}")
    _print_combinators()
    return 0


def cmd_partition(args) -> int:
    bundle = _build_model(args)
    planner = _make_planner(args)
    machine = _build_topology(args)
    # Key the plan by the same machine `simulate` models, so the two commands
    # share --cache-dir entries.
    plan = planner.plan(bundle.graph, machine.num_devices, machine=machine)
    print(f"model: {bundle.name} ({bundle.graph.num_nodes()} operators)")
    print(f"backend: {args.backend}")
    print(plan.summary())
    for weight in bundle.weights[:10]:
        ndim = len(bundle.graph.tensor(weight).shape)
        print(f"  {weight}: {plan.describe_tensor(weight, ndim)}")
    info = planner.cache_info()
    print(f"plan cache: {info['hits']} hits, {info['misses']} misses")
    return 0


def cmd_simulate(args) -> int:
    # --cost-model prices the whole command — the plan search and the
    # lowering both run inside the activated model's context.
    with _cost_model_context(args):
        return _run_simulate(args)


def _run_simulate(args) -> int:
    bundle = _build_model(args)
    machine = _build_topology(args)
    num_devices = machine.num_devices
    executor_name = args.executor
    spec = get_execution_backend(executor_name)
    print(f"model: {bundle.name}")
    plan = None
    if spec.requires_plan:
        # Any plan-requiring execution backend (tofu-partitioned or a
        # plugin) gets a plan from the planner facade first.
        print(f"backend: {args.backend}")
        plan = _make_planner(args).plan(
            bundle.graph, num_devices, machine=machine, backend=args.backend
        )
    options = {}
    if executor_name == "placement":
        options["device_of_node"] = round_robin_placement(bundle, num_devices)
    elif executor_name == "pipeline":
        options = {
            "num_stages": args.stages,
            "num_microbatches": args.microbatches,
            "schedule": args.schedule,
        }
    elif executor_name == "hybrid":
        options = {"replica_groups": args.replica_groups, "inner": args.inner}
        if args.inner == "pipeline":
            options["inner_options"] = {
                "num_stages": args.stages,
                "num_microbatches": args.microbatches,
                "schedule": args.schedule,
            }
        elif get_execution_backend(args.inner).requires_plan:
            # The inner backend partitions within one replica group, so the
            # plan is searched for the group's device count.
            group_workers = max(1, num_devices // args.replica_groups)
            print(f"backend: {args.backend} ({group_workers}-worker groups)")
            plan = _make_planner(args).plan(
                bundle.graph,
                group_workers,
                machine=slice_topology(machine, group_workers),
                backend=args.backend,
            )
    executor = Executor(ExecutorConfig(profile=args.profile))
    report = executor.run(
        bundle.graph,
        plan=plan,
        machine=machine,
        backend=executor_name,
        backend_options=options,
    )
    print(f"executor: {executor_name}")
    print(report.summary())
    print(f"throughput: {report.throughput(bundle.batch_size):.1f} samples/s")
    if executor.profile_timer is not None:
        print(executor.profile_timer.summary())
    return 0


def cmd_compile(args) -> int:
    if args.dry_run and args.save:
        print(
            "error: --save needs a compiled model; drop --dry-run to "
            "compile and save",
            file=sys.stderr,
        )
        return 1
    bundle = _build_model(args)
    machine = _build_topology(args)
    if machine.num_machines > 1:
        print(
            f"topology: {machine.num_machines} machines x "
            f"{machine.num_devices // machine.num_machines} GPUs"
        )
    print(f"model: {bundle.name} ({bundle.graph.num_nodes()} operators)")
    text = args.strategy.strip()
    strategy = text
    if text.lower() == "auto":
        if args.dry_run:
            print("strategy: auto — candidate sweep:")
            for candidate in auto_candidates(machine):
                print(f"  {candidate}")
            return 0
    else:
        strategy = parse_strategy(text)
        if args.dry_run:
            print(f"strategy: {strategy}")
            lowering = lower_strategy(strategy, machine, graph=bundle.graph)
            print(lowering.describe())
            return 0
    executor = Executor(ExecutorConfig(profile=args.profile))
    model = compile_model(
        bundle.graph,
        strategy,
        machine,
        planner=_make_planner(args),
        executor=executor,
        cost_model=args.cost_model,
    )
    print(model.summary())
    print(f"throughput: {model.throughput(bundle.batch_size):.1f} samples/s")
    if "auto_sweep" in model.metadata:
        print("auto sweep:")
        for entry in model.metadata["auto_sweep"]:
            if "error" in entry:
                print(f"  {entry['strategy']:<32} error: {entry['error']}")
            else:
                verdict = "oom" if entry["oom"] else (
                    f"{entry['iteration_time'] * 1e3:.2f} ms"
                )
                print(f"  {entry['strategy']:<32} {verdict}")
    if args.save:
        model.save(args.save)
        print(f"saved: {args.save}")
    if executor.profile_timer is not None:
        print(executor.profile_timer.summary())
    return 0


def _csv(text: str) -> list:
    return [item.strip() for item in text.split(",") if item.strip()]


def cmd_tune(args) -> int:
    from repro.tuner import Tuner, TunerBudget

    bundle = _build_model(args)
    machine = _build_topology(args)
    if machine.num_machines > 1:
        print(
            f"topology: {machine.num_machines} machines, "
            f"{machine.num_devices} devices"
        )
    print(f"model: {bundle.name} ({bundle.graph.num_nodes()} operators)")
    budget = TunerBudget(
        max_candidates=args.max_candidates, max_seconds=args.max_seconds
    )
    tuner = Tuner(
        budget=budget,
        jobs=args.jobs,
        microbatches=tuple(int(m) for m in _csv(args.microbatches)),
        schedules=tuple(_csv(args.schedules)),
        search_backends=tuple(_csv(args.search_backends)),
    )
    executor = Executor(ExecutorConfig(profile=args.profile))
    planner = Planner(
        PlannerConfig(backend=args.backend, cache_dir=args.cache_dir)
    )
    with _cost_model_context(args):
        result = tuner.tune(
            bundle.graph, machine, planner=planner, executor=executor
        )
    print(result.summary())
    rejected = [o for o in result.outcomes if o.status in ("screened", "error")]
    if rejected:
        print("rejected candidates:")
        for outcome in rejected:
            print(f"  {outcome.strategy:<36} {outcome.status}: {outcome.reason}")
    best = result.best
    print(
        f"throughput: {best.throughput(bundle.batch_size):.1f} samples/s "
        f"({best.strategy})"
    )
    if args.save:
        best.save(args.save)
        print(f"saved: {args.save}")
    if executor.profile_timer is not None:
        print(executor.profile_timer.summary())
    return 0


def _open_store(kind: str, cache_dir: str):
    """The on-disk store of one cache kind (``plan`` or ``program``)."""
    if kind == "program":
        return ProgramCache(cache_dir=cache_dir)
    return Planner(PlannerConfig(cache_dir=cache_dir)).cache


def cmd_cache_export(args) -> int:
    cache = _open_store(args.kind, args.cache_dir)
    count = cache.export_to(args.output)
    print(f"exported {count} {args.kind}(s) from {args.cache_dir} to {args.output}")
    return 0


def cmd_cache_import(args) -> int:
    cache = _open_store(args.kind, args.cache_dir)
    stats = cache.import_from(args.input, replace=args.replace)
    print(
        f"imported {stats['imported']} {args.kind}(s) into {args.cache_dir} "
        f"({stats['skipped']} already present"
        f"{'' if args.replace else ', use --replace to overwrite'})"
    )
    return 0


def cmd_cache_stats(args) -> int:
    from repro.planner.core import default_planner
    from repro.runtime.cache import default_program_cache

    stores = [
        (
            "plan cache",
            Planner(PlannerConfig(cache_dir=args.cache_dir)).cache
            if args.cache_dir else default_planner().cache,
        ),
        (
            "program cache",
            ProgramCache(cache_dir=args.program_cache_dir)
            if args.program_cache_dir else default_program_cache(),
        ),
    ]
    for name, cache in stores:
        info = cache.info()
        line = (
            f"{name}: {info['size']} in-memory entr"
            f"{'y' if info['size'] == 1 else 'ies'}, "
            f"{info['hits']} hit(s), {info['misses']} miss(es), "
            f"{info['hit_rate']:.1%} hit rate"
        )
        if "disk_entries" in info:
            line += (
                f"; disk: {info['disk_entries']} entr"
                f"{'y' if info['disk_entries'] == 1 else 'ies'}, "
                f"{info['disk_bytes']} bytes, "
                f"{info['disk_evictions']} eviction(s)"
            )
        else:
            line += "; disk: not configured"
        print(line)
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import CompileServer, CompileService

    service = CompileService(
        workers=args.serve_workers,
        expand_jobs=args.expand_jobs,
        plan_cache_dir=args.cache_dir,
        program_cache_dir=args.program_cache_dir,
        verify=args.verify,
    )
    server = CompileServer(service, host=args.host, port=args.port)

    async def run() -> None:
        host, port = await server.start()
        print(
            f"compile service listening on {host}:{port} "
            f"({args.serve_workers} worker(s), expand_jobs={args.expand_jobs})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        stats = service.stats()
        print(
            f"\nserved {stats['requests']} request(s): "
            f"{stats['deduped']} deduped, {stats['searches']} search(es), "
            f"{stats['errors']} error(s)"
        )
    finally:
        service.close()
    return 0


def cmd_replay(args) -> int:
    from repro.costmodel import (
        fit_cost_model,
        load_trace,
        render_report,
        replay_trace,
        resolve_cost_model,
        save_cost_model,
        write_report,
    )

    if args.fit and not args.save_model:
        print("error: --fit needs --save-model <path> to write the fitted "
              "model to", file=sys.stderr)
        return 1
    trace = load_trace(args.trace)
    models = {}
    for name in [m.strip() for m in args.models.split(",") if m.strip()]:
        if name in ("table", "fitted"):
            # Bare fittable names calibrate against the replayed trace itself
            # (self-fit: the upper bound of what calibration can deliver).
            models[name] = fit_cost_model(trace, name)
        else:
            models[name] = resolve_cost_model(name)
    report = replay_trace(trace, models)
    print(render_report(report))
    if args.output:
        write_report(report, args.output)
        print(f"report: {args.output}")
    if args.fit:
        fitted = fit_cost_model(trace, args.fit)
        save_cost_model(fitted, args.save_model)
        print(f"saved {args.fit} model: {args.save_model}")
    return 0


def cmd_verify(args) -> int:
    import os

    from repro.analysis import verify_model, verify_program
    from repro.compiler import CompiledModel
    from repro.errors import AnalysisError

    artifact = args.artifact
    if os.path.exists(artifact):
        model = CompiledModel.load(artifact)
        report = verify_model(model)
        what = f"saved model {artifact}"
    else:
        cache = ProgramCache(cache_dir=args.program_cache_dir)
        program = cache.get(artifact)
        if program is None:
            hint = (
                ""
                if args.program_cache_dir
                else " (pass --program-cache-dir to search an on-disk store)"
            )
            raise AnalysisError(
                f"{artifact!r} is neither a saved-model file nor a cached "
                f"program key{hint}",
                code="ANA014_UNKNOWN_ARTIFACT",
            )
        report = verify_program(program)
        what = f"cached program {artifact}"
    print(
        f"{what}: {len(report.checks_run)} check(s), "
        f"{len(report.findings)} finding(s)"
    )
    for finding in report.findings:
        print(f"  {finding}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_coverage(args) -> int:
    own = GLOBAL_REGISTRY.coverage_report()
    mxnet = mxnet_catalog_counts()
    print("TDL coverage (this repository's operator library):")
    for key, value in own.items():
        print(f"  {key}: {value}")
    print("TDL coverage (reconstructed MXNet v0.11 catalogue, Sec 4.1):")
    for key, value in mxnet.items():
        print(f"  {key}: {value}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="tofu-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_describe = sub.add_parser("describe", help="show an operator's strategies")
    p_describe.add_argument("operator")
    p_describe.set_defaults(func=cmd_describe)

    p_backends = sub.add_parser("backends", help="list registered search backends")
    p_backends.set_defaults(func=cmd_backends)

    p_executors = sub.add_parser(
        "executors", help="list registered execution backends"
    )
    p_executors.set_defaults(func=cmd_executors)

    p_compile = sub.add_parser(
        "compile", help="compile a model under a strategy expression"
    )
    _add_model_args(p_compile)
    _add_planner_args(p_compile)
    p_compile.add_argument(
        "--strategy",
        default="tofu",
        help="strategy expression (e.g. dp:2/pipeline:2:1f1b:4/tofu) or 'auto'",
    )
    p_compile.add_argument(
        "--dry-run",
        action="store_true",
        help="show the strategy lowering (or auto candidates) without "
        "planning or simulating",
    )
    p_compile.add_argument(
        "--save",
        default=None,
        help="write the compiled model (plan + program metadata) to this path",
    )
    p_compile.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage timings and cache counters of the compile",
    )
    _add_cost_model_arg(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_tune = sub.add_parser(
        "tune", help="autotune a strategy under an explicit search budget"
    )
    _add_model_args(p_tune)
    p_tune.add_argument(
        "--backend",
        choices=available_backends(),
        default="tofu",
        help="partition-search backend for the candidates' tofu leaves",
    )
    p_tune.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the persistent plan cache (default: in-memory only)",
    )
    p_tune.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool width for candidate evaluation (1 = in-process)",
    )
    p_tune.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        help="candidate budget: at most this many strategies are screened "
        "and evaluated (default: the whole generated grid)",
    )
    p_tune.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget: candidates not started by the deadline are "
        "reported as skipped",
    )
    p_tune.add_argument(
        "--microbatches",
        default="2,4,8",
        help="comma-separated micro-batch counts for pipeline candidates",
    )
    p_tune.add_argument(
        "--schedules",
        default="1f1b,gpipe",
        help="comma-separated pipeline schedules to sweep",
    )
    p_tune.add_argument(
        "--search-backends",
        default="",
        help="comma-separated extra partition-search backends to sweep as "
        "tofu:<name> candidates",
    )
    p_tune.add_argument(
        "--save",
        default=None,
        help="write the winning compiled model to this path",
    )
    p_tune.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage timings (tuner.screen / tuner.search / "
        "tuner.rank included) and cache counters",
    )
    _add_cost_model_arg(p_tune)
    p_tune.set_defaults(func=cmd_tune)

    p_partition = sub.add_parser("partition", help="search a partition plan")
    _add_model_args(p_partition)
    _add_planner_args(p_partition)
    p_partition.set_defaults(func=cmd_partition)

    p_simulate = sub.add_parser("simulate", help="partition and simulate a model")
    _add_model_args(p_simulate)
    _add_planner_args(p_simulate)
    p_simulate.add_argument(
        "--executor",
        choices=available_execution_backends(),
        default="tofu-partitioned",
        help="execution backend (see the `executors` command)",
    )
    p_simulate.add_argument(
        "--stages",
        type=int,
        default=None,
        help="pipeline stages (default: one per device, capped by layers)",
    )
    p_simulate.add_argument(
        "--microbatches",
        type=int,
        default=4,
        help="micro-batches per iteration for the pipeline executor",
    )
    p_simulate.add_argument(
        "--schedule",
        choices=["gpipe", "1f1b"],
        default="1f1b",
        help="pipeline schedule style",
    )
    p_simulate.add_argument(
        "--replica-groups",
        type=int,
        default=2,
        help="data-parallel replica groups for the hybrid executor",
    )
    p_simulate.add_argument(
        "--inner",
        default="tofu-partitioned",
        help="inner execution backend for the hybrid executor",
    )
    p_simulate.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage timings and cache counters of the run",
    )
    _add_cost_model_arg(p_simulate)
    p_simulate.set_defaults(func=cmd_simulate)

    p_cache = sub.add_parser(
        "cache", help="inspect and share the on-disk plan/program caches"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_export = cache_sub.add_parser(
        "export", help="bundle a --cache-dir store into one JSON file"
    )
    p_cache_export.add_argument(
        "--kind",
        choices=["plan", "program"],
        default="plan",
        help="which store the directory holds (default: plan)",
    )
    p_cache_export.add_argument(
        "--cache-dir", required=True, help="cache directory to export"
    )
    p_cache_export.add_argument(
        "--output", required=True, help="bundle file to write"
    )
    p_cache_export.set_defaults(func=cmd_cache_export)
    p_cache_import = cache_sub.add_parser(
        "import", help="merge an exported bundle into a --cache-dir store"
    )
    p_cache_import.add_argument(
        "--kind",
        choices=["plan", "program"],
        default="plan",
        help="which store the directory holds (default: plan)",
    )
    p_cache_import.add_argument(
        "--cache-dir", required=True, help="cache directory to import into"
    )
    p_cache_import.add_argument(
        "--input", required=True, help="bundle file written by `cache export`"
    )
    p_cache_import.add_argument(
        "--replace",
        action="store_true",
        help="overwrite entries already present in the store",
    )
    p_cache_import.set_defaults(func=cmd_cache_import)
    p_cache_stats = cache_sub.add_parser(
        "stats",
        help="entry counts, bytes, and hit/miss counters of both caches",
    )
    p_cache_stats.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk plan store to report (default: the in-process cache)",
    )
    p_cache_stats.add_argument(
        "--program-cache-dir",
        default=None,
        help="on-disk program store to report (default: the in-process cache)",
    )
    p_cache_stats.set_defaults(func=cmd_cache_stats)

    p_coverage = sub.add_parser("coverage", help="TDL operator coverage statistics")
    p_coverage.set_defaults(func=cmd_coverage)

    p_verify = sub.add_parser(
        "verify",
        help="statically verify a saved model file or cached program key",
    )
    p_verify.add_argument(
        "artifact",
        help="path of a --save'd compiled model, or a program-cache key",
    )
    p_verify.add_argument(
        "--program-cache-dir",
        default=None,
        help="on-disk program store to resolve cache keys against",
    )
    p_verify.set_defaults(func=cmd_verify)

    p_replay = sub.add_parser(
        "replay",
        help="score cost models against a measured trace (per-op-class "
        "MAPE/p50/p95) and optionally fit + save a calibrated model",
    )
    p_replay.add_argument(
        "--trace", required=True, help="measured-trace JSON (docs/trace-schema.md)"
    )
    p_replay.add_argument(
        "--models",
        default="roofline,table",
        help="comma-separated models to score: registry names, saved-model "
        "files, or bare 'table'/'fitted' to self-fit on this trace "
        "(default: roofline,table)",
    )
    p_replay.add_argument(
        "--output", default=None, help="write the JSON error report here"
    )
    p_replay.add_argument(
        "--fit",
        choices=["table", "fitted"],
        default=None,
        help="also fit a model of this kind from the trace",
    )
    p_replay.add_argument(
        "--save-model",
        default=None,
        help="path the --fit model is saved to (usable as --cost-model later)",
    )
    p_replay.set_defaults(func=cmd_replay)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile service (JSON lines over TCP, singleflight dedup)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=7718, help="bind port (default 7718; 0 = any)"
    )
    p_serve.add_argument(
        "--serve-workers",
        type=int,
        default=4,
        help="compile worker threads (concurrent requests in progress)",
    )
    p_serve.add_argument(
        "--expand-jobs",
        type=int,
        default=1,
        help="threads for frontier-DP state expansion inside each search "
        "(bit-identical plans; latency knob only)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent plan store so a restarted server comes back warm",
    )
    p_serve.add_argument(
        "--program-cache-dir",
        default=None,
        help="persistent lowered-program store",
    )
    p_serve.add_argument(
        "--verify",
        choices=["off", "warn", "strict"],
        default="strict",
        help="static verification of every served program (default strict: "
        "a failing program becomes an error response, never a cache entry)",
    )
    p_serve.set_defaults(func=cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        code = getattr(exc, "code", None)
        prefix = f"[{code}] " if code else ""
        print(f"error: {prefix}{exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
