"""Entry-point plugin loading shared by the planner and runtime registries.

Third-party packages advertise search algorithms and execution backends
through ``importlib.metadata`` entry points::

    [project.entry-points."repro.planner_backends"]
    my-search = "my_pkg.search:SPEC"

    [project.entry-points."repro.runtime_backends"]
    my-executor = "my_pkg.exec:make_spec"

An entry point may resolve to a ready-made spec (:class:`BackendSpec` /
:class:`ExecutionBackendSpec`), a zero-argument factory returning one, or a
bare lowering/search callable (wrapped into a spec named after the entry
point).  Loading is lazy — the registries pull the group in on first lookup —
and a broken third-party entry point degrades to a warning instead of taking
the CLI down.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Set

_LOADED_GROUPS: Set[str] = set()


def keyword_option_names(
    fn: Callable, *, skip: Sequence[str] = ()
) -> Optional[Sequence[str]]:
    """Keyword options a backend callable accepts, from its signature.

    Returns ``None`` (meaning "accept anything") when the callable takes
    ``**kwargs`` or its signature cannot be inspected, so wrapped plugin
    backends are never locked out of their own options.
    """
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    names = []
    for name, param in signature.parameters.items():
        if param.kind == inspect.Parameter.VAR_KEYWORD:
            return None
        if name in skip or param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.POSITIONAL_ONLY,
        ):
            continue
        if (
            param.kind == inspect.Parameter.KEYWORD_ONLY
            or param.default is not inspect.Parameter.empty
        ):
            names.append(name)
    return tuple(names)


class BackendRegistry:
    """String-keyed backend registry with entry-point loading.

    Shared by the planner's search backends and the runtime's execution
    backends so registration, lookup, listing, and lazy entry-point loading
    behave identically on both sides (one fix applies to both registries).
    """

    def __init__(
        self,
        *,
        kind: str,
        error_cls: type,
        entry_point_group: str,
        spec_type: type,
        make_spec: Callable[[str, Callable], object],
    ):
        self.kind = kind
        self.error_cls = error_cls
        self.entry_point_group = entry_point_group
        self.spec_type = spec_type
        self.make_spec = make_spec
        self.specs: Dict[str, object] = {}

    def register(self, spec, *, replace: bool = False):
        name = spec.name
        if name in self.specs and not replace:
            raise self.error_cls(
                f"{self.kind} backend {name!r} is already registered"
            )
        self.specs[name] = spec
        return spec

    def unregister(self, name: str) -> None:
        self.specs.pop(name, None)

    def load_entry_points(self, *, reload: bool = False) -> List[str]:
        return load_entry_points(
            self.entry_point_group,
            self.specs,
            make_spec=self.make_spec,
            spec_type=self.spec_type,
            reload=reload,
        )

    def get(self, name: str):
        if name not in self.specs:
            self.load_entry_points()
        try:
            return self.specs[name]
        except KeyError:
            known = ", ".join(sorted(self.specs))
            raise self.error_cls(
                f"unknown {self.kind} backend {name!r} (registered: {known})"
            ) from None

    def available(self) -> List[str]:
        self.load_entry_points()
        return sorted(self.specs)


def _iter_entry_points(group: str):
    """All installed entry points of ``group`` (patchable in tests)."""
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8 has no importlib.metadata
        return []
    try:
        entry_points = metadata.entry_points()
    except Exception:  # pragma: no cover - corrupt installation metadata
        return []
    if hasattr(entry_points, "select"):  # 3.10+ selectable interface
        return list(entry_points.select(group=group))
    return list(entry_points.get(group, []))  # 3.9 dict interface


def load_entry_points(
    group: str,
    registry: Dict[str, object],
    *,
    make_spec: Callable[[str, Callable], object],
    spec_type: type,
    reload: bool = False,
) -> List[str]:
    """Register every entry point of ``group`` into ``registry``.

    ``spec_type`` is the registry's spec dataclass; anything else the entry
    point yields is treated as a factory (called with no arguments) or as the
    backend callable itself (wrapped via ``make_spec(name, callable)``).
    Existing registry keys are never overridden.  Returns the names added.
    """
    if group in _LOADED_GROUPS and not reload:
        return []
    _LOADED_GROUPS.add(group)

    added: List[str] = []
    for entry_point in _iter_entry_points(group):
        try:
            loaded = entry_point.load()
            spec = _resolve_spec(entry_point.name, loaded, make_spec, spec_type)
        except Exception as exc:  # third-party code: degrade, don't crash
            warnings.warn(
                _broken_entry_point_message(group, entry_point, exc, registry),
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        name = getattr(spec, "name", entry_point.name)
        if name in registry:
            continue
        registry[name] = spec
        added.append(name)
    return added


def _strategy_combinator_hint() -> str:
    """The strategy mini-language keywords, for the diagnostics below.

    Imported lazily (and defensively): ``plugins`` is a leaf module both
    registries depend on, so the strategy package must not become a hard
    import of it.
    """
    try:
        from repro.strategy.algebra import combinator_names
    except Exception:  # pragma: no cover - circular/partial-install guard
        return ""
    return ", ".join(combinator_names())


def _broken_entry_point_message(
    group: str,
    entry_point,
    exc: Exception,
    registry: Optional[Dict[str, object]] = None,
) -> str:
    """Diagnostic for a third-party backend that failed to load.

    Names the backend, the distribution that advertised it and the entry
    point's target, so the operator knows *which package* to fix or
    uninstall instead of staring at a bare traceback — and enumerates what
    still works: the backends already registered plus the built-in strategy
    combinators ``repro.compile`` accepts regardless of plugins.
    """
    dist = getattr(entry_point, "dist", None)
    dist_name = getattr(dist, "name", None)
    version = getattr(dist, "version", None)
    if dist_name and version:
        origin = f"distribution {dist_name!r} ({dist_name}=={version})"
    elif dist_name:
        origin = f"distribution {dist_name!r}"
    else:
        origin = "an unknown distribution"
    target = getattr(entry_point, "value", None)
    target_part = f" = {target!r}" if target else ""
    message = (
        f"ignoring broken {group!r} entry point {entry_point.name!r}"
        f"{target_part} from {origin}: "
        f"{type(exc).__name__}: {exc}"
    )
    if registry:
        available = ", ".join(sorted(registry))
        message += f"; registered backends still available: {available}"
    combinators = _strategy_combinator_hint()
    if combinators:
        message += (
            f"; strategy combinators (repro.compile): {combinators}"
        )
    return message


def _resolve_spec(name: str, loaded, make_spec, spec_type):
    if isinstance(loaded, spec_type):
        return loaded
    if callable(loaded):
        try:
            produced = loaded()
        except TypeError:
            # Takes arguments: it is the backend callable itself.
            return make_spec(name, loaded)
        if isinstance(produced, spec_type):
            return produced
        return make_spec(name, loaded)
    raise TypeError(
        f"entry point {name!r} must yield a {spec_type.__name__}, a factory "
        f"returning one, or a backend callable (got {type(loaded).__name__})"
    )


def reset_entry_point_group(group: str) -> None:
    """Forget that ``group`` was loaded (test helper)."""
    _LOADED_GROUPS.discard(group)
