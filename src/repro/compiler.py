"""``repro.compile`` — one entry point from a graph to an executable model.

The paper's thesis is that *one* abstraction (partition-n-reduce) hides how
a model is split.  ``compile`` is that abstraction's public face: take a
built training graph, a :class:`repro.strategy.Strategy` (tree, canonical
string, or ``"auto"``) and a machine model, and return a
:class:`CompiledModel` bundling everything the strategy produced — the
partition plan (when one was searched), the lowered per-device program, and
the simulated iteration report — with ``save()``/``load()`` for the plan and
program metadata.

The strategy tree lowers onto the existing subsystems
(:func:`repro.strategy.lower_strategy`): ``dp(...)`` is interpreted by the
``hybrid`` execution backend, ``pipeline(...)`` passes its stage/schedule
parameters to the ``pipeline`` backend, and a ``tofu`` leaf first runs the
:class:`repro.planner.Planner` (plans are cached under a key covering the
*full* strategy, so two hybrid/pipeline configurations never collide on one
entry).

``strategy="auto"`` runs the budgeted autotuner (:mod:`repro.tuner`): a
full-algebra candidate grid is screened for memory fit before any full
simulation, survivors are simulated (optionally across a process pool), and
the fastest viable candidate wins; plain ``tofu()`` always leads the grid,
so ``auto`` is never slower than it.  Pass ``tuner=Tuner(...)`` to control
the budget, pool width, and grid axes; the default keeps the historical
16-candidate sweep size.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Union

from repro import perf
from repro.errors import ExecutionError, PartitionError, StrategyError
from repro.graph.graph import Graph
from repro.partition.plan import PartitionPlan, plan_from_dict, plan_to_dict
from repro.runtime.core import Executor, SimulationReport
from repro.runtime.program import LoweredProgram
from repro.sim.device import (
    Topology,
    cluster_of,
    k80_8gpu_machine,
    machine_from_dict,
    machine_to_dict,
)
from repro.strategy.algebra import Machines, Strategy, parse
from repro.strategy.lowering import lower_strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.planner.core import Planner
    from repro.tuner import Tuner

__all__ = ["CompiledModel", "compile", "compile_model"]

SAVE_FORMAT = "repro-compiled-model"
SAVE_VERSION = 1

# The metadata split of one save payload; _program_metadata emits exactly
# these keys (program ones always, result ones when a report exists).
_PROGRAM_META_KEYS = (
    "backend", "num_devices", "num_tasks", "total_comm_bytes",
    "per_device_memory", "num_microbatches", "stats",
)
_RESULT_META_KEYS = ("iteration_time", "comm_fraction", "oom")


@dataclass
class CompiledModel:
    """Everything one strategy produced for one graph on one machine.

    ``program`` and ``report`` hold the full lowered tasks and simulation
    verdict right after :func:`compile`; a model reloaded with
    :meth:`load` keeps the plan and the program/result *metadata* (backend,
    devices, memory report, iteration time) without the task graph, which is
    cheap to re-lower from the plan.
    """

    strategy: Strategy
    machine: Topology
    plan: Optional[PartitionPlan] = None
    program: Optional[LoweredProgram] = None
    report: Optional[SimulationReport] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------- queries
    @property
    def strategy_text(self) -> str:
        """The canonical string form of the compiled strategy."""
        return str(self.strategy)

    @property
    def backend(self) -> str:
        """Execution backend the strategy lowered to."""
        if self.program is not None:
            return self.program.backend
        return str(self.metadata.get("backend", ""))

    @property
    def iteration_time(self) -> float:
        """Simulated seconds per training iteration."""
        if self.report is not None:
            return self.report.result.iteration_time
        return float(self.metadata.get("iteration_time", 0.0))

    @property
    def oom(self) -> bool:
        """Whether the simulated execution exceeded any device's memory."""
        if self.report is not None:
            return self.report.result.oom
        return bool(self.metadata.get("oom", False))

    def throughput(self, batch_size: int) -> float:
        """Samples per second at ``batch_size`` samples per iteration."""
        if self.iteration_time <= 0:
            return 0.0
        return batch_size / self.iteration_time

    def simulate(self, executor: Optional[Executor] = None) -> SimulationReport:
        """Simulate the lowered program and fill :attr:`report`.

        A no-op when the model is already simulated.  Only a model holding
        its lowered program can be simulated — i.e. one from
        :func:`compile` (``lower_only=True`` defers exactly this step); a
        model reloaded from disk carries metadata only.
        """
        if self.report is not None:
            return self.report
        if self.program is None:
            raise StrategyError(
                "cannot simulate: this model carries no lowered program "
                "(compile it again; save()/load() keeps metadata only)"
            )
        executor = executor or Executor()
        result = executor.simulate(self.program)
        self.report = SimulationReport(
            plan=self.plan,
            partitioned=self.program.partitioned,
            result=result,
            program=self.program,
        )
        self.metadata.update(_program_metadata(self.program, self.report))
        return self.report

    def freeze(self) -> "CompiledModel":
        """Mark the lowered program trusted-immutable and return ``self``.

        Repeat :meth:`simulate` calls (and any direct
        ``Executor.simulate(model.program)``) then skip the per-call task
        fingerprint — see :meth:`repro.runtime.LoweredProgram.freeze` for
        the contract.  A no-op for a metadata-only model (no program).
        """
        if self.program is not None:
            self.program.freeze()
        return self

    def summary(self) -> str:
        """One human-readable block: strategy, devices, timing, memory."""
        if self.report is not None:
            text = self.report.summary()
            if not text.startswith("strategy:"):
                text = f"strategy: {self.strategy_text}\n{text}"
            return text
        return (
            f"strategy: {self.strategy_text}\n"
            f"backend: {self.backend}, iteration time: "
            f"{self.iteration_time * 1e3:.1f} ms (loaded metadata)"
        )

    # -------------------------------------------------------------- save/load
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form: strategy + machine + plan + program and
        result metadata (the task graph itself is not persisted)."""
        # One authority for the metadata shape: a live program/report is
        # re-snapshotted through _program_metadata, a loaded model re-emits
        # the metadata it was loaded with.
        source = (
            _program_metadata(self.program, self.report)
            if self.program is not None
            else self.metadata
        )
        program_meta = {k: source[k] for k in _PROGRAM_META_KEYS if k in source}
        result_meta = {k: source[k] for k in _RESULT_META_KEYS if k in source}
        payload: Dict[str, object] = {
            "format": SAVE_FORMAT,
            "version": SAVE_VERSION,
            "strategy": self.strategy.to_dict(),
            "strategy_text": self.strategy_text,
            "machine": machine_to_dict(self.machine),
            "plan": plan_to_dict(self.plan) if self.plan is not None else None,
            "program": program_meta,
            "result": result_meta,
        }
        if "auto_sweep" in self.metadata:
            payload["auto_sweep"] = self.metadata["auto_sweep"]
        if "tuner" in self.metadata:
            payload["tuner"] = self.metadata["tuner"]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CompiledModel":
        """Rebuild a model from :meth:`to_dict` output."""
        if payload.get("format") != SAVE_FORMAT:
            raise StrategyError(
                f"not a {SAVE_FORMAT} payload "
                f"(format={payload.get('format')!r})"
            )
        metadata: Dict[str, object] = {}
        metadata.update(payload.get("program") or {})
        metadata.update(payload.get("result") or {})
        if "auto_sweep" in payload:
            metadata["auto_sweep"] = payload["auto_sweep"]
        if "tuner" in payload:
            metadata["tuner"] = payload["tuner"]
        plan_payload = payload.get("plan")
        return cls(
            strategy=Strategy.from_dict(payload["strategy"]),
            machine=machine_from_dict(payload["machine"]),
            plan=plan_from_dict(plan_payload) if plan_payload else None,
            metadata=metadata,
        )

    def save(self, path: str) -> str:
        """Write the model (plan + program metadata) as JSON to ``path``."""
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "CompiledModel":
        """Reload a model saved with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def _resolve_machine(
    machine: Optional[Topology],
    num_workers: Optional[int],
    strategy: Optional[Strategy] = None,
) -> Topology:
    if machine is None:
        # A machines(M)-rooted strategy defaults to M of the paper's boxes
        # over the default network fabric; num_workers sizes each box.
        count = 1
        if strategy is not None and isinstance(strategy, Machines):
            count = strategy.count
        base = k80_8gpu_machine(num_workers if num_workers else 8)
        return cluster_of(base, count)
    if num_workers is not None and num_workers != machine.num_devices:
        raise StrategyError(
            f"num_workers={num_workers} contradicts the machine's "
            f"{machine.num_devices} devices; pass one or the other"
        )
    return machine


def _program_metadata(
    program: LoweredProgram, report: Optional[SimulationReport]
) -> Dict[str, object]:
    metadata: Dict[str, object] = {
        "backend": program.backend,
        "num_devices": program.num_devices,
        "num_tasks": len(program.tasks),
        "total_comm_bytes": program.total_comm_bytes,
        "per_device_memory": {
            str(device): required
            for device, required in program.per_device_memory.items()
        },
        "num_microbatches": program.num_microbatches,
        "stats": dict(program.stats),
    }
    if report is not None:
        metadata["iteration_time"] = report.result.iteration_time
        metadata["comm_fraction"] = report.result.comm_fraction()
        metadata["oom"] = report.result.oom
    return metadata


def _attach_profile(model: CompiledModel, executor: Executor) -> None:
    """Surface a profiling executor's timer as ``metadata["profile"]``.

    The snapshot is cumulative over the executor's lifetime, so profiling
    one ``compile`` in isolation means giving it a fresh
    ``Executor(ExecutorConfig(profile=True))`` — which is what the CLI's
    ``--profile`` flag does.  A warm compile's snapshot then shows the
    ``plan_cache.hit``/``program_cache.hit`` counters and *no* ``pass.*`` or
    ``lower.*`` stages: every lowering pass was skipped.
    """
    if executor.profile_timer is not None:
        model.metadata["profile"] = executor.profile_timer.snapshot()


def compile(
    graph: Graph,
    strategy: Union[Strategy, str] = "tofu",
    machine: Optional[Topology] = None,
    *,
    num_workers: Optional[int] = None,
    plan: Optional[PartitionPlan] = None,
    planner: Optional["Planner"] = None,
    executor: Optional[Executor] = None,
    plan_options: Optional[Mapping[str, object]] = None,
    backend_options: Optional[Mapping[str, object]] = None,
    simulate: bool = True,
    lower_only: bool = False,
    candidates: Optional[Sequence[Union[Strategy, str]]] = None,
    cost_model: Optional[object] = None,
    tuner: Optional["Tuner"] = None,
) -> CompiledModel:
    """Compile ``graph`` for ``machine`` under ``strategy``.

    Args:
        graph: A built (training) dataflow graph.
        strategy: A :class:`Strategy` tree, its canonical string form
            (``"dp:2/pipeline:4:1f1b:8/tofu"``), or ``"auto"`` to sweep
            composed strategies and keep the fastest.  ``"auto"`` rejects
            ``plan=...``, ``simulate=False`` and ``backend_options`` (they
            are single-strategy concerns); ``plan_options`` apply to every
            candidate's search.
        machine: Machine or cluster model (:class:`MachineSpec` /
            :class:`ClusterSpec`); defaults to the paper's 8×K80 box, sized
            to ``num_workers`` when given — or, for a ``machines(M)``-rooted
            strategy, a cluster of ``M`` such boxes.
        num_workers: Shorthand for the default machine's device count (per
            machine, under a ``machines(M)`` root); rejected if it
            contradicts an explicit ``machine``.
        plan: Pre-searched partition plan for the strategy's ``tofu`` leaf
            (skips planning).
        planner: Planner to search (and cache) plans with; defaults to the
            process-wide planner, so repeated compiles share one cache.
        executor: Executor to lower/simulate with (defaults to a fresh one).
        plan_options: Extra search-backend options for the planner.
        backend_options: Extra execution-backend options merged over the
            lowered strategy options (e.g. ``fuse_remote_fetch=False``).
        simulate: When false, stop after planning — ``CompiledModel.plan``
            is filled, ``program``/``report`` stay ``None``.
        lower_only: Plan and lower but defer the simulation; the returned
            model holds its ``program`` (memory report included) and
            :meth:`CompiledModel.simulate` completes it on demand.  The
            batch-search evaluators use this to price only programs that
            fit device memory.
        candidates: Overrides the ``"auto"`` candidate set (strategy trees
            or strings); ignored for explicit strategies.
        cost_model: Pricing model for planning, lowering, and simulation —
            a registry name (``"roofline"``, ``"table:trace=/path.json"``),
            a path to a saved model, or a
            :class:`repro.costmodel.CostModel` instance.  ``None`` (the
            default) keeps the built-in roofline pricing; a non-default
            model folds its signature into the plan- and program-cache
            keys, so calibrated and default compiles never share entries.
        tuner: A configured :class:`repro.tuner.Tuner` driving the
            ``"auto"`` sweep — budget, process-pool width, and grid axes.
            ``None`` keeps the default bounded sweep
            (``TunerBudget(max_candidates=16)`` over the generated grid;
            explicit ``candidates`` run unbounded, as they always have).
            Rejected for explicit strategies.

    Returns:
        A :class:`CompiledModel`; its ``report`` carries the simulated
        iteration verdict unless ``simulate=False``.

    Raises:
        StrategyError: For malformed strategies or contradictory arguments.
        CostModelError: When ``cost_model`` cannot be resolved.
    """
    from repro.planner.core import default_planner

    if cost_model is not None:
        from repro.costmodel import (
            configured_cost_model,
            cost_model_cache_token,
            use_cost_model,
        )

        model_override = configured_cost_model(cost_model)
        with use_cost_model(model_override):
            compiled = compile(
                graph,
                strategy,
                machine,
                num_workers=num_workers,
                plan=plan,
                planner=planner,
                executor=executor,
                plan_options=plan_options,
                backend_options=backend_options,
                simulate=simulate,
                lower_only=lower_only,
                candidates=candidates,
                tuner=tuner,
            )
        token = cost_model_cache_token(model_override)
        if token is not None:
            compiled.metadata["cost_model"] = token
        return compiled

    if isinstance(strategy, str) and strategy.strip().lower() == "auto":
        machine = _resolve_machine(machine, num_workers)
        if plan is not None:
            raise StrategyError(
                "strategy='auto' searches its own plans; pass an explicit "
                "strategy to compile with a pre-searched plan"
            )
        if not simulate or lower_only:
            raise StrategyError(
                "strategy='auto' picks by simulated iteration time and "
                "cannot run with simulate=False or lower_only=True"
            )
        if backend_options:
            raise StrategyError(
                "strategy='auto' sweeps candidates lowering to different "
                "execution backends, so backend-specific backend_options "
                "cannot apply; compile the chosen strategy explicitly instead"
            )
        return _compile_auto(
            graph,
            machine,
            planner=planner,
            executor=executor,
            plan_options=plan_options,
            candidates=candidates,
            tuner=tuner,
        )
    if tuner is not None:
        raise StrategyError(
            "tuner= configures the strategy='auto' sweep; an explicit "
            "strategy has nothing to tune"
        )
    strategy = parse(strategy) if isinstance(strategy, str) else strategy
    if not isinstance(strategy, Strategy):
        raise StrategyError(
            f"strategy must be a Strategy or string, got {type(strategy).__name__}"
        )
    machine = _resolve_machine(machine, num_workers, strategy)
    executor = executor or Executor()
    # A profiling executor's timer is active over the whole flow — strategy
    # lowering, the planner search, every lowering pass, the simulate loop —
    # and lands on the model as metadata["profile"].
    with perf.activation(executor.profile_timer):
        lowering = lower_strategy(strategy, machine, graph=graph)
        # machines(M) narrows the topology; everything below executes on the
        # slice.
        exec_machine = lowering.machine if lowering.machine is not None else machine

        if plan is None and lowering.plan_workers:
            planner = planner or default_planner()
            plan = planner.plan(
                graph,
                lowering.plan_workers,
                machine=lowering.plan_machine or exec_machine,
                backend=lowering.plan_backend,
                backend_options=plan_options,
                strategy=lowering.strategy,
            )

        if not simulate:
            model = CompiledModel(
                strategy=lowering.strategy,
                machine=machine,
                plan=plan,
                metadata={"backend": lowering.backend},
            )
            _attach_profile(model, executor)
            return model

        options = dict(lowering.options)
        if backend_options:
            options.update(backend_options)
        if lower_only:
            program = executor.lower(
                graph,
                plan=plan,
                machine=exec_machine,
                backend=lowering.backend,
                backend_options=options,
            )
            program.strategy = str(lowering.strategy)
            model = CompiledModel(
                strategy=lowering.strategy,
                machine=machine,
                plan=program.plan if program.plan is not None else plan,
                program=program,
                metadata=_program_metadata(program, None),
            )
            _attach_profile(model, executor)
            return model
        report = executor.run(
            graph,
            plan=plan,
            machine=exec_machine,
            backend=lowering.backend,
            backend_options=options,
        )
        program = report.program
        if program is not None:
            program.strategy = str(lowering.strategy)
        model = CompiledModel(
            strategy=lowering.strategy,
            machine=machine,
            plan=report.plan if report.plan is not None else plan,
            program=program,
            report=report,
            metadata=_program_metadata(program, report),
        )
        _attach_profile(model, executor)
        return model


# Re-exported under a non-shadowing name for callers that keep the builtin
# ``compile`` in scope.
compile_model = compile


# How many candidates the default (no ``tuner=``) auto sweep admits from
# the generated grid — the historical auto sweep's size.
AUTO_MAX_CANDIDATES = 16


def _compile_auto(
    graph: Graph,
    machine: Topology,
    *,
    planner: Optional["Planner"],
    executor: Optional[Executor],
    plan_options: Optional[Mapping[str, object]] = None,
    candidates: Optional[Sequence[Union[Strategy, str]]],
    tuner: Optional["Tuner"] = None,
) -> CompiledModel:
    """Run the budgeted autotuner and return the fastest viable candidate."""
    from repro.planner.core import default_planner
    from repro.tuner import Tuner, TunerBudget

    planner = planner or default_planner()
    if tuner is None:
        # An explicit candidate list has always been evaluated in full;
        # only the generated grid gets the historical 16-candidate cap.
        budget = (
            TunerBudget()
            if candidates is not None
            else TunerBudget(max_candidates=AUTO_MAX_CANDIDATES)
        )
        tuner = Tuner(budget=budget)
    result = tuner.tune(
        graph,
        machine,
        planner=planner,
        executor=executor,
        plan_options=plan_options,
        candidates=candidates,
    )
    best = result.best
    assert best is not None  # tune() raises when nothing is viable
    # The legacy sweep record: one entry per attempted candidate (screened
    # ones count as OOM with their reason; budget-skipped ones never ran
    # and live only in metadata["tuner"]).
    sweep: List[Dict[str, object]] = []
    for outcome in result.outcomes:
        if outcome.status == "evaluated":
            sweep.append(
                {
                    "strategy": outcome.strategy,
                    "iteration_time": outcome.iteration_time,
                    "oom": outcome.oom,
                }
            )
        elif outcome.status == "screened":
            sweep.append(
                {
                    "strategy": outcome.strategy,
                    "oom": True,
                    "screened": outcome.reason,
                }
            )
        elif outcome.status == "error":
            sweep.append({"strategy": outcome.strategy, "error": outcome.reason})
    best.metadata["auto_sweep"] = sweep
    best.metadata["tuner"] = result.to_dict()
    if executor is not None:
        # A profiling executor saw every candidate; re-snapshot so the
        # winner's profile covers the whole sweep.
        _attach_profile(best, executor)
    return best


def warn_legacy_api(old: str, new: str) -> None:
    """Deprecation pointer from a legacy surface to its strategy spelling."""
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )
