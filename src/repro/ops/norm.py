"""Normalisation operators (batch normalisation).

The TDL description models the per-device (non-synchronised) batch
normalisation used by MXNet when a batch is sharded: the affine scale/shift is
described exactly, while the batch statistics are treated as device-local.
This keeps the access pattern honest for partitioning purposes — every
strategy that is legal for a per-device BN is discovered — and mirrors what
the paper's MXNet prototype executes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ShapeError
from repro.tdl import op as tdl_op
from repro.ops.registry import num_elements, register_op


@tdl_op(name="batch_norm")
def _batch_norm_tdl(data, gamma, beta):
    return lambda n, c, y, x: data[n, c, y, x] * gamma[c] + beta[c]


@tdl_op(name="batch_norm_backward_data")
def _batch_norm_backward_data_tdl(out_grad, gamma):
    return lambda n, c, y, x: out_grad[n, c, y, x] * gamma[c]


@tdl_op(name="layer_norm")
def _layer_norm_tdl(data, gamma, beta):
    return lambda n, c: data[n, c] * gamma[c] + beta[c]


def _batch_norm_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data, gamma, beta = input_shapes
    if len(data) != 4:
        raise ShapeError(f"batch_norm expects 4-D input, got {data}")
    if gamma[0] != data[1] or beta[0] != data[1]:
        raise ShapeError(
            f"batch_norm parameter size mismatch: data {data}, gamma {gamma}, beta {beta}"
        )
    return [tuple(data)]


def _batch_norm_backward_data_shape(input_shapes, attrs):
    return [tuple(input_shapes[0])]


def _layer_norm_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data, gamma, beta = input_shapes
    if len(data) != 2:
        raise ShapeError(f"layer_norm expects 2-D input, got {data}")
    return [tuple(data)]


def _norm_flops(input_shapes, output_shapes, attrs) -> float:
    # Normalisation is a handful of FLOPs per element (stats + affine).
    return 5.0 * num_elements(output_shapes[0])


def _batch_norm_grad(builder, node, out_grads) -> Dict[int, str]:
    data, gamma, beta = node.inputs
    dout = out_grads[0]
    d_data = builder.apply(
        "batch_norm_backward_data", [dout, gamma], name=f"{node.name}_dX"
    )
    scaled = builder.apply("multiply", [dout, data], name=f"{node.name}_dG_prod")
    d_gamma = builder.apply("reduce_to_channel", [scaled], name=f"{node.name}_dG")
    d_beta = builder.apply("reduce_to_channel", [dout], name=f"{node.name}_dBeta")
    return {0: d_data, 1: d_gamma, 2: d_beta}


def _layer_norm_grad(builder, node, out_grads) -> Dict[int, str]:
    data, gamma, beta = node.inputs
    dout = out_grads[0]
    d_data = builder.apply("multiply_col_broadcast", [dout, gamma], name=f"{node.name}_dX")
    scaled = builder.apply("multiply", [dout, data], name=f"{node.name}_dG_prod")
    d_gamma = builder.apply("reduce_to_column", [scaled], name=f"{node.name}_dG")
    d_beta = builder.apply("reduce_to_column", [dout], name=f"{node.name}_dBeta")
    return {0: d_data, 1: d_gamma, 2: d_beta}


def register_norm_ops() -> None:
    register_op(
        "batch_norm",
        _batch_norm_shape,
        flops=_norm_flops,
        tdl=_batch_norm_tdl,
        gradient=_batch_norm_grad,
        category="norm",
    )
    register_op(
        "batch_norm_backward_data",
        _batch_norm_backward_data_shape,
        flops=_norm_flops,
        tdl=_batch_norm_backward_data_tdl,
        gradient=None,
        category="norm",
    )
    register_op(
        "layer_norm",
        _layer_norm_shape,
        flops=_norm_flops,
        tdl=_layer_norm_tdl,
        gradient=_layer_norm_grad,
        category="norm",
    )
