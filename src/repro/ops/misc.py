"""Miscellaneous operators: data movement, slicing, and opaque examples."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ShapeError
from repro.tdl import Opaque, op as tdl_op
from repro.ops.registry import num_elements, register_op, zero_flops


@tdl_op(name="slice_axis1")
def _slice_axis1_tdl(data):
    # Extract a contiguous range of columns: out[n, h] = data[n, h + begin].
    # The begin offset is an attribute; a constant offset does not change
    # which dimension follows which partition axis.
    return lambda n, h: data[n, h]


@tdl_op(name="flatten_nc")
def _flatten_nc_tdl(data):
    # [N, C, 1, 1] -> [N, C]
    return lambda n, c: data[n, c, 0 * n, 0 * n]


@tdl_op(name="concat_axis1")
def _concat_axis1_tdl(a, b):
    # Concatenation along columns; each output element comes from one input
    # at the same row index, so the row dimension is freely partitionable.
    return lambda n, h: a[n, h] + b[n, h]


@tdl_op(name="broadcast_to_like")
def _broadcast_to_like_tdl(scalar, like):
    return lambda n, k: scalar[0 * n] + like[n, k]


@tdl_op(name="embedding_lookup")
def _embedding_lookup_tdl(table, ids):
    # Data-dependent indexing of the table rows is hidden in an opaque
    # function (Sec 4.1); only the batch dimension of ``ids`` is analysable.
    lookup = Opaque("gather_rows")
    return lambda n, h: lookup(table[:, :], ids[n])[h]


@tdl_op(name="batch_cholesky")
def _batch_cholesky_tdl(batch_mat):
    # Figure 3's example: Cholesky itself is opaque but the batch dimension
    # can still be partitioned.
    cholesky = Opaque("cholesky")
    return lambda b, i, j: cholesky(batch_mat[b, :, :])[i, j]


# --------------------------------------------------------------------------
# Shapes
# --------------------------------------------------------------------------
def _slice_axis1_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data = input_shapes[0]
    begin = int(attrs.get("begin", 0))
    end = int(attrs.get("end", data[1]))
    if not 0 <= begin < end <= data[1]:
        raise ShapeError(f"invalid slice [{begin}:{end}] of shape {data}")
    return [(data[0], end - begin)]


def _flatten_nc_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data = input_shapes[0]
    if len(data) != 4 or data[2] != 1 or data[3] != 1:
        raise ShapeError(f"flatten_nc expects [N,C,1,1], got {data}")
    return [(data[0], data[1])]


def _concat_axis1_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    a, b = input_shapes
    if len(a) != 2 or len(b) != 2 or a[0] != b[0]:
        raise ShapeError(f"concat_axis1 expects matching rows, got {a}, {b}")
    return [(a[0], a[1] + b[1])]


def _broadcast_to_like_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    like = attrs.get("like_shape")
    if like is None:
        like = input_shapes[1]
    return [tuple(like)]


def _embedding_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    table, ids = input_shapes
    if len(table) != 2 or len(ids) != 1:
        raise ShapeError(f"embedding_lookup expects [V,H] table and [N] ids, got {input_shapes}")
    return [(ids[0], table[1])]


def _batch_cholesky_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    mat = input_shapes[0]
    if len(mat) != 3 or mat[1] != mat[2]:
        raise ShapeError(f"batch_cholesky expects [B,N,N], got {mat}")
    return [tuple(mat)]


# --------------------------------------------------------------------------
# Gradients
# --------------------------------------------------------------------------
def _slice_axis1_grad(builder, node, out_grads) -> Dict[int, str]:
    data = node.inputs[0]
    shape = builder.tensor_shape(data)
    grad = builder.apply(
        "slice_axis1_backward",
        [out_grads[0]],
        name=f"{node.name}_dX",
        attrs={"data_shape": shape, "begin": node.attrs.get("begin", 0)},
    )
    return {0: grad}


def _slice_axis1_backward_shape(input_shapes, attrs):
    shape = attrs.get("data_shape")
    if shape is None:
        raise ShapeError("slice_axis1_backward requires 'data_shape'")
    return [tuple(shape)]


@tdl_op(name="slice_axis1_backward")
def _slice_axis1_backward_tdl(out_grad):
    return lambda n, h: out_grad[n, h]


def _flatten_nc_grad(builder, node, out_grads) -> Dict[int, str]:
    data_shape = builder.tensor_shape(node.inputs[0])
    grad = builder.apply(
        "unflatten_nc",
        [out_grads[0]],
        name=f"{node.name}_dX",
        attrs={"data_shape": data_shape},
    )
    return {0: grad}


def _unflatten_nc_shape(input_shapes, attrs):
    shape = attrs.get("data_shape")
    if shape is None:
        raise ShapeError("unflatten_nc requires 'data_shape'")
    return [tuple(shape)]


@tdl_op(name="unflatten_nc")
def _unflatten_nc_tdl(data):
    return lambda n, c, y, x: data[n, c]


def _concat_axis1_grad(builder, node, out_grads) -> Dict[int, str]:
    a, b = node.inputs
    a_shape = builder.tensor_shape(a)
    b_shape = builder.tensor_shape(b)
    da = builder.apply(
        "slice_axis1",
        [out_grads[0]],
        name=f"{node.name}_dA",
        attrs={"begin": 0, "end": a_shape[1]},
    )
    db = builder.apply(
        "slice_axis1",
        [out_grads[0]],
        name=f"{node.name}_dB",
        attrs={"begin": a_shape[1], "end": a_shape[1] + b_shape[1]},
    )
    return {0: da, 1: db}


def register_misc_ops() -> None:
    register_op(
        "slice_axis1",
        _slice_axis1_shape,
        flops=zero_flops,
        tdl=_slice_axis1_tdl,
        gradient=_slice_axis1_grad,
        category="data_movement",
    )
    register_op(
        "slice_axis1_backward",
        _slice_axis1_backward_shape,
        flops=zero_flops,
        tdl=_slice_axis1_backward_tdl,
        gradient=None,
        category="data_movement",
    )
    register_op(
        "flatten_nc",
        _flatten_nc_shape,
        flops=zero_flops,
        tdl=_flatten_nc_tdl,
        gradient=_flatten_nc_grad,
        category="data_movement",
    )
    register_op(
        "unflatten_nc",
        _unflatten_nc_shape,
        flops=zero_flops,
        tdl=_unflatten_nc_tdl,
        gradient=None,
        category="data_movement",
    )
    register_op(
        "concat_axis1",
        _concat_axis1_shape,
        flops=zero_flops,
        tdl=_concat_axis1_tdl,
        gradient=_concat_axis1_grad,
        category="data_movement",
    )
    register_op(
        "broadcast_to_like",
        _broadcast_to_like_shape,
        flops=lambda i, o, a: float(num_elements(o[0])),
        tdl=_broadcast_to_like_tdl,
        gradient=None,
        category="broadcast",
    )
    register_op(
        "embedding_lookup",
        _embedding_shape,
        flops=lambda i, o, a: float(num_elements(o[0])),
        tdl=_embedding_lookup_tdl,
        gradient=None,
        category="opaque",
    )
    register_op(
        "batch_cholesky",
        _batch_cholesky_shape,
        flops=lambda i, o, a: float(num_elements(i[0])) * i[0][1] / 3.0,
        tdl=_batch_cholesky_tdl,
        gradient=None,
        category="opaque",
    )
