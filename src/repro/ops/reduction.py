"""Reduction operators and loss functions.

These are the operators with explicit output reductions (11 of MXNet's
non-element-wise describable operators have at least one reduction dimension
per Sec 4.1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ShapeError
from repro.tdl import Sum, op as tdl_op
from repro.ops.registry import num_elements, register_op


@tdl_op(name="reduce_to_channel")
def _reduce_to_channel_tdl(data):
    # [N, C, H, W] -> [C]; used for bias / batch-norm parameter gradients.
    return lambda c: Sum(lambda n, y, x: data[n, c, y, x])


@tdl_op(name="reduce_to_column")
def _reduce_to_column_tdl(data):
    # [N, K] -> [K]; used for dense-layer bias gradients.
    return lambda k: Sum(lambda n: data[n, k])


@tdl_op(name="reduce_mean_all")
def _reduce_mean_all_tdl(data):
    # [N, K] -> [1]; scalar training loss.
    return lambda o: Sum(lambda n, k: data[n, k])


@tdl_op(name="softmax_cross_entropy")
def _softmax_cross_entropy_tdl(logits, labels):
    # Per-sample loss: [N, K], [N] -> [N].
    return lambda n: Sum(lambda k: logits[n, k]) + labels[n]


@tdl_op(name="softmax_cross_entropy_backward")
def _softmax_cross_entropy_backward_tdl(logits, labels, loss_grad):
    return lambda n, k: logits[n, k] + labels[n] + loss_grad[n]


@tdl_op(name="broadcast_scalar")
def _broadcast_scalar_tdl(scalar):
    # [1] -> [N]; used to broadcast the loss gradient back to samples.
    return lambda n: scalar[0 * n]


@tdl_op(name="multiply_col_broadcast")
def _multiply_col_broadcast_tdl(data, vec):
    # [N, K] * [K] -> [N, K]
    return lambda n, k: data[n, k] * vec[k]


# --------------------------------------------------------------------------
# Shapes
# --------------------------------------------------------------------------
def _reduce_to_channel_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data = input_shapes[0]
    if len(data) != 4:
        raise ShapeError(f"reduce_to_channel expects 4-D input, got {data}")
    return [(data[1],)]


def _reduce_to_column_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data = input_shapes[0]
    if len(data) != 2:
        raise ShapeError(f"reduce_to_column expects 2-D input, got {data}")
    return [(data[1],)]


def _reduce_mean_all_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    return [(1,)]


def _softmax_ce_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    logits, labels = input_shapes
    if len(logits) != 2 or len(labels) != 1 or logits[0] != labels[0]:
        raise ShapeError(
            f"softmax_cross_entropy expects [N,K] logits and [N] labels, got {input_shapes}"
        )
    return [(logits[0],)]


def _softmax_ce_backward_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    return [tuple(input_shapes[0])]


def _broadcast_scalar_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    n = attrs.get("length")
    if n is None:
        raise ShapeError("broadcast_scalar requires the 'length' attribute")
    return [(int(n),)]


def _mul_col_broadcast_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data, vec = input_shapes
    if len(data) != 2 or data[1] != vec[0]:
        raise ShapeError(f"multiply_col_broadcast shape mismatch: {data} * {vec}")
    return [tuple(data)]


# --------------------------------------------------------------------------
# FLOPs
# --------------------------------------------------------------------------
def _input_elem_flops(input_shapes, output_shapes, attrs) -> float:
    return float(num_elements(input_shapes[0]))


def _softmax_flops(input_shapes, output_shapes, attrs) -> float:
    return 4.0 * num_elements(input_shapes[0])


# --------------------------------------------------------------------------
# Gradients
# --------------------------------------------------------------------------
def _softmax_ce_grad(builder, node, out_grads) -> Dict[int, str]:
    logits, labels = node.inputs
    d_logits = builder.apply(
        "softmax_cross_entropy_backward",
        [logits, labels, out_grads[0]],
        name=f"{node.name}_dLogits",
    )
    return {0: d_logits}


def _reduce_mean_all_grad(builder, node, out_grads) -> Dict[int, str]:
    data = node.inputs[0]
    shape = builder.tensor_shape(data)
    # Gradient of a mean is a broadcast of the scalar gradient; for the cost
    # and memory model a same-shaped element-wise tensor is generated.
    grad = builder.apply(
        "broadcast_to_like",
        [out_grads[0], data],
        name=f"{node.name}_dX",
        attrs={"like_shape": shape},
    )
    return {0: grad}


def register_reduction_ops() -> None:
    register_op(
        "reduce_to_channel",
        _reduce_to_channel_shape,
        flops=_input_elem_flops,
        tdl=_reduce_to_channel_tdl,
        gradient=None,
        category="reduce",
    )
    register_op(
        "reduce_to_column",
        _reduce_to_column_shape,
        flops=_input_elem_flops,
        tdl=_reduce_to_column_tdl,
        gradient=None,
        category="reduce",
    )
    register_op(
        "reduce_mean_all",
        _reduce_mean_all_shape,
        flops=_input_elem_flops,
        tdl=_reduce_mean_all_tdl,
        gradient=_reduce_mean_all_grad,
        category="reduce",
    )
    register_op(
        "softmax_cross_entropy",
        _softmax_ce_shape,
        flops=_softmax_flops,
        tdl=_softmax_cross_entropy_tdl,
        gradient=_softmax_ce_grad,
        category="loss",
    )
    register_op(
        "softmax_cross_entropy_backward",
        _softmax_ce_backward_shape,
        flops=_softmax_flops,
        tdl=_softmax_cross_entropy_backward_tdl,
        gradient=None,
        category="loss",
    )
    register_op(
        "broadcast_scalar",
        _broadcast_scalar_shape,
        flops=_input_elem_flops,
        tdl=_broadcast_scalar_tdl,
        gradient=None,
        category="broadcast",
    )
    register_op(
        "multiply_col_broadcast",
        _mul_col_broadcast_shape,
        flops=_input_elem_flops,
        tdl=_multiply_col_broadcast_tdl,
        gradient=None,
        category="broadcast",
    )
