"""2-D convolution operators (the workhorse of Wide ResNet).

Data layout is NCHW; weights are [Cout, Cin, Kh, Kw].  Forward and both
backward convolutions get their own TDL descriptions because their access
patterns differ — in particular ``conv2d_backward_weight`` reduces over the
batch and spatial dimensions, which is exactly the output-reduction strategy
that the paper shows ICML18 misses (Sec 7.3).

The TDL descriptions describe the stride-1 access pattern; stride and padding
only rescale the halo constants and do not change which dimension follows
which partition axis, so strategy discovery is unaffected.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ShapeError
from repro.tdl import Sum, op as tdl_op
from repro.ops.registry import num_elements, register_op


# --------------------------------------------------------------------------
# TDL descriptions
# --------------------------------------------------------------------------
@tdl_op(name="conv2d")
def _conv2d_tdl(data, weight):
    return lambda n, co, y, x: Sum(
        lambda ci, ky, kx: data[n, ci, y + ky, x + kx] * weight[co, ci, ky, kx]
    )


@tdl_op(name="conv2d_backward_data")
def _conv2d_backward_data_tdl(out_grad, weight):
    return lambda n, ci, y, x: Sum(
        lambda co, ky, kx: out_grad[n, co, y + ky, x + kx] * weight[co, ci, ky, kx]
    )


@tdl_op(name="conv2d_backward_weight")
def _conv2d_backward_weight_tdl(data, out_grad):
    return lambda co, ci, ky, kx: Sum(
        lambda n, y, x: data[n, ci, y + ky, x + kx] * out_grad[n, co, y, x]
    )


@tdl_op(name="bias_add4d")
def _bias_add4d_tdl(data, bias):
    return lambda n, c, y, x: data[n, c, y, x] + bias[c]


@tdl_op(name="bias_add")
def _bias_add_tdl(data, bias):
    return lambda n, c: data[n, c] + bias[c]


# --------------------------------------------------------------------------
# Shape inference
# --------------------------------------------------------------------------
def _conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size is non-positive "
            f"(size={size}, kernel={kernel}, stride={stride}, pad={pad})"
        )
    return out


def _conv2d_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data, weight = input_shapes
    if len(data) != 4 or len(weight) != 4:
        raise ShapeError(f"conv2d expects 4-D data and weight, got {data}, {weight}")
    n, cin, h, w = data
    cout, wcin, kh, kw = weight
    if cin != wcin:
        raise ShapeError(f"conv2d channel mismatch: data {cin} vs weight {wcin}")
    stride = int(attrs.get("stride", 1))
    pad = int(attrs.get("pad", kh // 2))
    ho = _conv_out_size(h, kh, stride, pad)
    wo = _conv_out_size(w, kw, stride, pad)
    return [(n, cout, ho, wo)]


def _conv2d_backward_data_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    out_grad, weight = input_shapes
    data_shape = attrs.get("data_shape")
    if data_shape is None:
        raise ShapeError("conv2d_backward_data requires the 'data_shape' attribute")
    return [tuple(data_shape)]


def _conv2d_backward_weight_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    weight_shape = attrs.get("weight_shape")
    if weight_shape is None:
        raise ShapeError("conv2d_backward_weight requires the 'weight_shape' attribute")
    return [tuple(weight_shape)]


def _bias_add_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data, bias = input_shapes
    if data[1] != bias[0]:
        raise ShapeError(f"bias_add channel mismatch: {data} + {bias}")
    return [tuple(data)]


# --------------------------------------------------------------------------
# FLOPs
# --------------------------------------------------------------------------
def _conv2d_flops(input_shapes, output_shapes, attrs) -> float:
    weight = input_shapes[1]
    out = output_shapes[0]
    cout, cin, kh, kw = weight
    return 2.0 * num_elements(out) * cin * kh * kw


def _conv2d_backward_data_flops(input_shapes, output_shapes, attrs) -> float:
    weight = input_shapes[1]
    out = output_shapes[0]
    cout, cin, kh, kw = weight
    return 2.0 * num_elements(out) * cout * kh * kw


def _conv2d_backward_weight_flops(input_shapes, output_shapes, attrs) -> float:
    data = input_shapes[0]
    out_grad = input_shapes[1]
    weight = output_shapes[0]
    _, _, kh, kw = weight
    return 2.0 * num_elements(out_grad) * weight[1] * kh * kw


def _bias_flops(input_shapes, output_shapes, attrs) -> float:
    return float(num_elements(output_shapes[0]))


# --------------------------------------------------------------------------
# Gradients
# --------------------------------------------------------------------------
def _conv2d_grad(builder, node, out_grads) -> Dict[int, str]:
    data, weight = node.inputs
    dout = out_grads[0]
    data_shape = builder.tensor_shape(data)
    weight_shape = builder.tensor_shape(weight)
    attrs = dict(node.attrs)
    d_data = builder.apply(
        "conv2d_backward_data",
        [dout, weight],
        name=f"{node.name}_dX",
        attrs={**attrs, "data_shape": data_shape},
    )
    d_weight = builder.apply(
        "conv2d_backward_weight",
        [data, dout],
        name=f"{node.name}_dW",
        attrs={**attrs, "weight_shape": weight_shape},
    )
    return {0: d_data, 1: d_weight}


def _bias_add4d_grad(builder, node, out_grads) -> Dict[int, str]:
    dout = out_grads[0]
    d_bias = builder.apply("reduce_to_channel", [dout], name=f"{node.name}_dB")
    return {0: dout, 1: d_bias}


def _bias_add_grad(builder, node, out_grads) -> Dict[int, str]:
    dout = out_grads[0]
    d_bias = builder.apply("reduce_to_column", [dout], name=f"{node.name}_dB")
    return {0: dout, 1: d_bias}


def register_conv_ops() -> None:
    register_op(
        "conv2d",
        _conv2d_shape,
        flops=_conv2d_flops,
        tdl=_conv2d_tdl,
        gradient=_conv2d_grad,
        category="conv",
    )
    register_op(
        "conv2d_backward_data",
        _conv2d_backward_data_shape,
        flops=_conv2d_backward_data_flops,
        tdl=_conv2d_backward_data_tdl,
        gradient=None,
        category="conv",
    )
    register_op(
        "conv2d_backward_weight",
        _conv2d_backward_weight_shape,
        flops=_conv2d_backward_weight_flops,
        tdl=_conv2d_backward_weight_tdl,
        gradient=None,
        category="conv",
    )
    register_op(
        "bias_add4d",
        _bias_add_shape,
        flops=_bias_flops,
        tdl=_bias_add4d_tdl,
        gradient=_bias_add4d_grad,
        category="broadcast",
    )
    register_op(
        "bias_add",
        _bias_add_shape,
        flops=_bias_flops,
        tdl=_bias_add_tdl,
        gradient=_bias_add_grad,
        category="broadcast",
    )
