"""Element-wise operators.

Element-wise operators are the most common operator class (77 of MXNet's 134
describable operators, Sec 4.1).  Their TDL descriptions access every input at
exactly the output indices, which is what lets graph coarsening coalesce
chains of them (Sec 5.1).

Gradient builders return a mapping ``input position -> gradient tensor name``.
"""

from __future__ import annotations

from typing import Dict

from repro.tdl.lang import elementwise as tdl_elementwise
from repro.ops.registry import register_op, same_shape


# --------------------------------------------------------------------------
# Gradient builders
# --------------------------------------------------------------------------
def _identity_grad(builder, node, out_grads) -> Dict[int, str]:
    """Gradient of a unary identity-like operator (copy, identity)."""
    return {0: out_grads[0]}


def _add_grad(builder, node, out_grads) -> Dict[int, str]:
    # Emit distinct copy nodes (as MXNet's _backward_copy does) so the same
    # gradient tensor is not shared between two forward tensors; sharing would
    # chain otherwise-unrelated tensor groups together during coarsening.
    da = builder.apply("copy", [out_grads[0]], name=f"{node.name}_dA")
    db = builder.apply("copy", [out_grads[0]], name=f"{node.name}_dB")
    return {0: da, 1: db}


def _sub_grad(builder, node, out_grads) -> Dict[int, str]:
    da = builder.apply("copy", [out_grads[0]], name=f"{node.name}_dA")
    neg = builder.apply("negative", [out_grads[0]], name=f"{node.name}_dneg")
    return {0: da, 1: neg}


def _mul_grad(builder, node, out_grads) -> Dict[int, str]:
    a, b = node.inputs[0], node.inputs[1]
    da = builder.apply("multiply", [out_grads[0], b], name=f"{node.name}_dA")
    db = builder.apply("multiply", [out_grads[0], a], name=f"{node.name}_dB")
    return {0: da, 1: db}


def _relu_grad(builder, node, out_grads) -> Dict[int, str]:
    grad = builder.apply(
        "relu_backward", [out_grads[0], node.inputs[0]], name=f"{node.name}_dX"
    )
    return {0: grad}


def _sigmoid_grad(builder, node, out_grads) -> Dict[int, str]:
    grad = builder.apply(
        "sigmoid_backward", [out_grads[0], node.outputs[0]], name=f"{node.name}_dX"
    )
    return {0: grad}


def _tanh_grad(builder, node, out_grads) -> Dict[int, str]:
    grad = builder.apply(
        "tanh_backward", [out_grads[0], node.outputs[0]], name=f"{node.name}_dX"
    )
    return {0: grad}


def _unary_saved_input_grad(backward_op: str):
    def grad(builder, node, out_grads) -> Dict[int, str]:
        g = builder.apply(
            backward_op, [out_grads[0], node.inputs[0]], name=f"{node.name}_dX"
        )
        return {0: g}

    return grad


# --------------------------------------------------------------------------
# Registration
# --------------------------------------------------------------------------
_UNARY_FORWARD_WITH_INPUT_GRAD = [
    # (name, backward op name)
    ("exp", "exp_backward"),
    ("log", "log_backward"),
    ("sqrt", "sqrt_backward"),
    ("square", "square_backward"),
]

_UNARY_NO_GRAD = [
    "negative",
    "abs",
    "sign",
    "floor",
    "ceil",
    "round",
    "clip",
    "dropout_mask_apply",
]

_BACKWARD_ONLY = [
    # backward element-wise kernels (two inputs: upstream grad + saved value)
    "relu_backward",
    "sigmoid_backward",
    "tanh_backward",
    "exp_backward",
    "log_backward",
    "sqrt_backward",
    "square_backward",
    "pow_backward",
]

_OPTIMIZER_OPS = [
    # element-wise optimiser kernels (Sec 5.1 notes that optimisers such as
    # SGD/Adam are chains of element-wise operators and thus coalesce).
    ("sgd_update", 2),          # weight, grad -> new weight
    ("adagrad_hist_update", 2),  # history, grad -> new history
    ("adagrad_apply", 3),        # weight, grad, history -> new weight
    ("adam_moment_update", 2),
    ("adam_apply", 3),
]


def register_elementwise_ops() -> None:
    """Register all element-wise operators used by the model zoo."""
    register_op(
        "identity",
        same_shape,
        tdl=tdl_elementwise("identity", 1),
        gradient=_identity_grad,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "copy",
        same_shape,
        tdl=tdl_elementwise("copy", 1),
        gradient=_identity_grad,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "add",
        same_shape,
        tdl=tdl_elementwise("add", 2),
        gradient=_add_grad,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "subtract",
        same_shape,
        tdl=tdl_elementwise("subtract", 2),
        gradient=_sub_grad,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "multiply",
        same_shape,
        tdl=tdl_elementwise("multiply", 2),
        gradient=_mul_grad,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "divide",
        same_shape,
        tdl=tdl_elementwise("divide", 2),
        gradient=None,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "relu",
        same_shape,
        tdl=tdl_elementwise("relu", 1),
        gradient=_relu_grad,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "sigmoid",
        same_shape,
        tdl=tdl_elementwise("sigmoid", 1),
        gradient=_sigmoid_grad,
        elementwise=True,
        category="elementwise",
    )
    register_op(
        "tanh",
        same_shape,
        tdl=tdl_elementwise("tanh", 1),
        gradient=_tanh_grad,
        elementwise=True,
        category="elementwise",
    )

    for name, backward in _UNARY_FORWARD_WITH_INPUT_GRAD:
        register_op(
            name,
            same_shape,
            tdl=tdl_elementwise(name, 1),
            gradient=_unary_saved_input_grad(backward),
            elementwise=True,
            category="elementwise",
        )

    for name in _UNARY_NO_GRAD:
        register_op(
            name,
            same_shape,
            tdl=tdl_elementwise(name, 1),
            gradient=_identity_grad,
            elementwise=True,
            category="elementwise",
        )

    for name in _BACKWARD_ONLY:
        register_op(
            name,
            same_shape,
            tdl=tdl_elementwise(name, 2),
            gradient=None,
            elementwise=True,
            category="elementwise",
        )

    for name, arity in _OPTIMIZER_OPS:
        register_op(
            name,
            same_shape,
            tdl=tdl_elementwise(name, arity),
            gradient=None,
            elementwise=True,
            category="optimizer",
        )
