"""Operator registry.

Every operator that can appear in a dataflow graph is registered here with:

* a shape-inference function (so graphs can be built symbolically),
* a FLOP cost function (consumed by the device simulator),
* a TDL description (consumed by partition-strategy discovery),
* an optional gradient builder (consumed by reverse-mode autodiff).

This is the stand-in for MXNet's operator registry; the paper's prototype
attaches TDL descriptions to 134 of MXNet v0.11's 139 operators in the same
spirit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import UnknownOperatorError
from repro.tdl.lang import TDLOperator
from repro.tdl.registry import GLOBAL_REGISTRY

ShapeFn = Callable[[List[Tuple[int, ...]], dict], List[Tuple[int, ...]]]
FlopsFn = Callable[[List[Tuple[int, ...]], List[Tuple[int, ...]], dict], float]
GradFn = Callable[[object, object, List[str]], Dict[str, str]]


@dataclass
class OpDef:
    """Definition of one operator."""

    name: str
    infer_shape: ShapeFn
    flops: FlopsFn
    tdl: Optional[TDLOperator] = None
    gradient: Optional[GradFn] = None
    elementwise: bool = False
    category: str = "general"
    num_outputs: int = 1
    attrs_schema: Dict[str, object] = field(default_factory=dict)

    def output_shapes(
        self, input_shapes: List[Tuple[int, ...]], attrs: dict
    ) -> List[Tuple[int, ...]]:
        return self.infer_shape(input_shapes, attrs)

    def flop_count(
        self,
        input_shapes: List[Tuple[int, ...]],
        output_shapes: List[Tuple[int, ...]],
        attrs: dict,
    ) -> float:
        return self.flops(input_shapes, output_shapes, attrs)


#: The process-global operator table.
OPS: Dict[str, OpDef] = {}


def register_op(
    name: str,
    infer_shape: ShapeFn,
    *,
    flops: Optional[FlopsFn] = None,
    tdl: Optional[TDLOperator] = None,
    gradient: Optional[GradFn] = None,
    elementwise: bool = False,
    category: str = "general",
    num_outputs: int = 1,
) -> OpDef:
    """Register an operator definition (overwrites any previous definition)."""
    if flops is None:
        flops = elementwise_flops
    opdef = OpDef(
        name=name,
        infer_shape=infer_shape,
        flops=flops,
        tdl=tdl,
        gradient=gradient,
        elementwise=elementwise,
        category=category,
        num_outputs=num_outputs,
    )
    OPS[name] = opdef
    if tdl is not None:
        GLOBAL_REGISTRY.register(tdl, name=name)
    return opdef


def get_op(name: str) -> OpDef:
    try:
        return OPS[name]
    except KeyError:
        raise UnknownOperatorError(f"operator {name!r} is not registered") from None


def has_op(name: str) -> bool:
    return name in OPS


def list_ops(category: Optional[str] = None) -> List[str]:
    if category is None:
        return sorted(OPS)
    return sorted(n for n, d in OPS.items() if d.category == category)


# --------------------------------------------------------------------------
# Generic shape / FLOP helpers used by many operator definitions
# --------------------------------------------------------------------------
def num_elements(shape: Sequence[int]) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n


def same_shape(input_shapes: List[Tuple[int, ...]], attrs: dict) -> List[Tuple[int, ...]]:
    """Shape function for element-wise operators: output mirrors input 0."""
    return [tuple(input_shapes[0])]


def elementwise_flops(
    input_shapes: List[Tuple[int, ...]],
    output_shapes: List[Tuple[int, ...]],
    attrs: dict,
) -> float:
    """One FLOP per output element (the default for cheap operators)."""
    return float(num_elements(output_shapes[0]))


def zero_flops(
    input_shapes: List[Tuple[int, ...]],
    output_shapes: List[Tuple[int, ...]],
    attrs: dict,
) -> float:
    """Data-movement-only operators (reshape, slice, copy)."""
    return 0.0
