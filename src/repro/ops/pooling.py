"""Pooling operators for CNNs."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ShapeError
from repro.tdl import Max, Sum, op as tdl_op
from repro.ops.registry import num_elements, register_op


@tdl_op(name="max_pool2d")
def _max_pool_tdl(data):
    return lambda n, c, y, x: Max(lambda ky, kx: data[n, c, y + ky, x + kx])


@tdl_op(name="avg_pool2d")
def _avg_pool_tdl(data):
    return lambda n, c, y, x: Sum(lambda ky, kx: data[n, c, y + ky, x + kx])


@tdl_op(name="global_avg_pool")
def _global_avg_pool_tdl(data):
    return lambda n, c: Sum(lambda y, x: data[n, c, y, x])


@tdl_op(name="pool2d_backward")
def _pool_backward_tdl(out_grad, data):
    # The gradient of pooling scatters each output gradient back into its
    # pooling window; access-pattern-wise it mirrors the forward halo pattern.
    return lambda n, c, y, x: Sum(lambda ky, kx: out_grad[n, c, y + ky, x + kx]) + data[
        n, c, y, x
    ]


@tdl_op(name="global_avg_pool_backward")
def _global_avg_pool_backward_tdl(out_grad):
    return lambda n, c, y, x: out_grad[n, c]


def _pool_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data = input_shapes[0]
    if len(data) != 4:
        raise ShapeError(f"pooling expects 4-D input, got {data}")
    n, c, h, w = data
    kernel = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", kernel))
    pad = int(attrs.get("pad", 0))
    ho = (h + 2 * pad - kernel) // stride + 1
    wo = (w + 2 * pad - kernel) // stride + 1
    if ho <= 0 or wo <= 0:
        raise ShapeError(f"pooling output is empty for input {data} and attrs {attrs}")
    return [(n, c, ho, wo)]


def _global_avg_pool_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data = input_shapes[0]
    if len(data) != 4:
        raise ShapeError(f"global_avg_pool expects 4-D input, got {data}")
    return [(data[0], data[1])]


def _pool_backward_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    return [tuple(input_shapes[1])]


def _global_avg_pool_backward_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    data_shape = attrs.get("data_shape")
    if data_shape is None:
        raise ShapeError("global_avg_pool_backward requires 'data_shape'")
    return [tuple(data_shape)]


def _pool_flops(input_shapes, output_shapes, attrs) -> float:
    kernel = int(attrs.get("kernel", 2))
    return float(num_elements(output_shapes[0])) * kernel * kernel


def _global_pool_flops(input_shapes, output_shapes, attrs) -> float:
    return float(num_elements(input_shapes[0]))


def _max_pool_grad(builder, node, out_grads) -> Dict[int, str]:
    grad = builder.apply(
        "pool2d_backward",
        [out_grads[0], node.inputs[0]],
        name=f"{node.name}_dX",
        attrs=dict(node.attrs),
    )
    return {0: grad}


def _global_avg_pool_grad(builder, node, out_grads) -> Dict[int, str]:
    data_shape = builder.tensor_shape(node.inputs[0])
    grad = builder.apply(
        "global_avg_pool_backward",
        [out_grads[0]],
        name=f"{node.name}_dX",
        attrs={"data_shape": data_shape},
    )
    return {0: grad}


def register_pooling_ops() -> None:
    register_op(
        "max_pool2d",
        _pool_shape,
        flops=_pool_flops,
        tdl=_max_pool_tdl,
        gradient=_max_pool_grad,
        category="pooling",
    )
    register_op(
        "avg_pool2d",
        _pool_shape,
        flops=_pool_flops,
        tdl=_avg_pool_tdl,
        gradient=_max_pool_grad,
        category="pooling",
    )
    register_op(
        "global_avg_pool",
        _global_avg_pool_shape,
        flops=_global_pool_flops,
        tdl=_global_avg_pool_tdl,
        gradient=_global_avg_pool_grad,
        category="pooling",
    )
    register_op(
        "pool2d_backward",
        _pool_backward_shape,
        flops=_pool_flops,
        tdl=_pool_backward_tdl,
        gradient=None,
        category="pooling",
    )
    register_op(
        "global_avg_pool_backward",
        _global_avg_pool_backward_shape,
        flops=_global_pool_flops,
        tdl=_global_avg_pool_backward_tdl,
        gradient=None,
        category="pooling",
    )
