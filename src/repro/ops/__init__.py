"""Operator library.

Importing this package registers every operator definition (shape inference,
FLOP model, TDL description, gradient builder) into the global registries.
"""

from repro.ops.registry import OPS, OpDef, get_op, has_op, list_ops, num_elements, register_op
from repro.ops.elementwise import register_elementwise_ops
from repro.ops.matmul import register_matmul_ops
from repro.ops.conv import register_conv_ops
from repro.ops.pooling import register_pooling_ops
from repro.ops.norm import register_norm_ops
from repro.ops.reduction import register_reduction_ops
from repro.ops.misc import register_misc_ops


def register_all_ops() -> None:
    """(Re-)register the full operator library."""
    register_elementwise_ops()
    register_matmul_ops()
    register_conv_ops()
    register_pooling_ops()
    register_norm_ops()
    register_reduction_ops()
    register_misc_ops()


register_all_ops()

__all__ = [
    "OPS",
    "OpDef",
    "get_op",
    "has_op",
    "list_ops",
    "num_elements",
    "register_all_ops",
    "register_op",
]
