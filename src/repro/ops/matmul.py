"""Matrix multiplication operators (the workhorse of RNN/LSTM models).

Three variants are registered so that forward and backward passes each have a
TDL description with the *correct* access pattern (the backward matmuls
transpose one operand, which changes which dimension follows each partition
axis):

* ``matmul``:    C[m, n] = sum_k A[m, k] * B[k, n]
* ``matmul_nt``: C[m, k] = sum_n A[m, n] * B[k, n]   (B transposed)
* ``matmul_tn``: C[k, n] = sum_m A[m, k] * B[m, n]   (A transposed)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ShapeError
from repro.tdl import Sum, op as tdl_op
from repro.ops.registry import register_op


# --------------------------------------------------------------------------
# TDL descriptions
# --------------------------------------------------------------------------
@tdl_op(name="matmul")
def _matmul_tdl(a, b):
    return lambda m, n: Sum(lambda k: a[m, k] * b[k, n])


@tdl_op(name="matmul_nt")
def _matmul_nt_tdl(a, b):
    return lambda m, k: Sum(lambda n: a[m, n] * b[k, n])


@tdl_op(name="matmul_tn")
def _matmul_tn_tdl(a, b):
    return lambda k, n: Sum(lambda m: a[m, k] * b[m, n])


# --------------------------------------------------------------------------
# Shape inference
# --------------------------------------------------------------------------
def _matmul_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    a, b = input_shapes
    if len(a) != 2 or len(b) != 2:
        raise ShapeError(f"matmul expects 2-D operands, got {a} and {b}")
    if a[1] != b[0]:
        raise ShapeError(f"matmul inner dimensions mismatch: {a} x {b}")
    return [(a[0], b[1])]


def _matmul_nt_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    a, b = input_shapes
    if len(a) != 2 or len(b) != 2:
        raise ShapeError(f"matmul_nt expects 2-D operands, got {a} and {b}")
    if a[1] != b[1]:
        raise ShapeError(f"matmul_nt inner dimensions mismatch: {a} x {b}^T")
    return [(a[0], b[0])]


def _matmul_tn_shape(input_shapes: List[Tuple[int, ...]], attrs: dict):
    a, b = input_shapes
    if len(a) != 2 or len(b) != 2:
        raise ShapeError(f"matmul_tn expects 2-D operands, got {a} and {b}")
    if a[0] != b[0]:
        raise ShapeError(f"matmul_tn inner dimensions mismatch: {a}^T x {b}")
    return [(a[1], b[1])]


# --------------------------------------------------------------------------
# FLOPs
# --------------------------------------------------------------------------
def _matmul_flops(input_shapes, output_shapes, attrs) -> float:
    a = input_shapes[0]
    out = output_shapes[0]
    # 2 * M * N * K multiply-adds; K is the contracted dimension.
    m_times_n = out[0] * out[1]
    k = a[1] if attrs.get("variant", "nn") != "tn" else a[0]
    return 2.0 * m_times_n * k


def _matmul_nt_flops(input_shapes, output_shapes, attrs) -> float:
    a = input_shapes[0]
    out = output_shapes[0]
    return 2.0 * out[0] * out[1] * a[1]


def _matmul_tn_flops(input_shapes, output_shapes, attrs) -> float:
    a = input_shapes[0]
    out = output_shapes[0]
    return 2.0 * out[0] * out[1] * a[0]


# --------------------------------------------------------------------------
# Gradients
# --------------------------------------------------------------------------
def _matmul_grad(builder, node, out_grads) -> Dict[int, str]:
    a, b = node.inputs
    dc = out_grads[0]
    da = builder.apply("matmul_nt", [dc, b], name=f"{node.name}_dA")
    db = builder.apply("matmul_tn", [a, dc], name=f"{node.name}_dB")
    return {0: da, 1: db}


def _matmul_nt_grad(builder, node, out_grads) -> Dict[int, str]:
    # C[m,k] = sum_n A[m,n] B[k,n]; dA = dC B, dB = dC^T A.
    a, b = node.inputs
    dc = out_grads[0]
    da = builder.apply("matmul", [dc, b], name=f"{node.name}_dA")
    db = builder.apply("matmul_tn", [dc, a], name=f"{node.name}_dB")
    return {0: da, 1: db}


def _matmul_tn_grad(builder, node, out_grads) -> Dict[int, str]:
    # C[k,n] = sum_m A[m,k] B[m,n]; dA = B dC^T, dB = A dC.
    a, b = node.inputs
    dc = out_grads[0]
    da = builder.apply("matmul_nt", [b, dc], name=f"{node.name}_dA")
    db = builder.apply("matmul", [a, dc], name=f"{node.name}_dB")
    return {0: da, 1: db}


def register_matmul_ops() -> None:
    register_op(
        "matmul",
        _matmul_shape,
        flops=_matmul_flops,
        tdl=_matmul_tdl,
        gradient=_matmul_grad,
        category="matmul",
    )
    register_op(
        "matmul_nt",
        _matmul_nt_shape,
        flops=_matmul_nt_flops,
        tdl=_matmul_nt_tdl,
        gradient=_matmul_nt_grad,
        category="matmul",
    )
    register_op(
        "matmul_tn",
        _matmul_tn_shape,
        flops=_matmul_tn_flops,
        tdl=_matmul_tn_tdl,
        gradient=_matmul_tn_grad,
        category="matmul",
    )
