"""A TDL description catalogue mirroring the MXNet v0.11 operator set.

Sec 4.1 of the paper reports that TDL can describe 134 of MXNet v0.11's 139
operators — 77 element-wise, 2 opaque, 11 with output reductions — and 257 of
TensorFlow's 341.  This module reconstructs an operator catalogue with the
same composition so that the coverage statistics can be regenerated
(``benchmarks/bench_sec41_tdl_coverage.py``).  Operators that also exist in
:mod:`repro.ops` reuse their real descriptions; the remainder are catalogued
with representative descriptions of the right class.
"""

from __future__ import annotations

from typing import List

from repro.tdl import Opaque, Sum, TDLOperator, op as tdl_op
from repro.tdl.lang import elementwise as tdl_elementwise
from repro.tdl.registry import DescriptionRegistry

# 77 element-wise operators (MXNet v0.11 unary/binary math, activations,
# comparison, logical and optimiser update kernels).
ELEMENTWISE_OPS: List[str] = [
    "abs", "arccos", "arccosh", "arcsin", "arcsinh", "arctan", "arctanh",
    "broadcast_add", "broadcast_div", "broadcast_equal", "broadcast_greater",
    "broadcast_greater_equal", "broadcast_hypot", "broadcast_lesser",
    "broadcast_lesser_equal", "broadcast_maximum", "broadcast_minimum",
    "broadcast_mod", "broadcast_mul", "broadcast_not_equal", "broadcast_power",
    "broadcast_sub", "cbrt", "ceil", "clip", "cos", "cosh", "degrees",
    "elemwise_add", "elemwise_div", "elemwise_mul", "elemwise_sub", "exp",
    "expm1", "fix", "floor", "gamma", "gammaln", "hard_sigmoid", "identity",
    "log", "log10", "log1p", "log2", "logical_not", "make_loss", "maximum",
    "minimum", "negative", "ones_like", "radians", "rcbrt", "reciprocal",
    "relu", "rint", "round", "rsqrt", "sigmoid", "sign", "sin", "sinh",
    "smooth_l1", "softsign", "sqrt", "square", "tan", "tanh", "trunc",
    "where", "zeros_like", "adam_update", "sgd_update", "sgd_mom_update",
    "rmsprop_update", "rmspropalex_update", "ftrl_update", "mp_sgd_update",
]

# 11 operators with at least one reduction dimension.
REDUCTION_OPS: List[str] = [
    "sum", "mean", "prod", "nansum", "nanprod", "max_axis", "min_axis",
    "batch_dot", "dot", "fully_connected", "norm",
]

# 2 operators described with the opaque-function primitive.
OPAQUE_OPS: List[str] = ["linalg_potrf_batched", "topk"]

# The remaining describable operators are "general": their access pattern is
# neither purely element-wise nor a pure reduction (convolutions, pooling,
# padding, transpositions, softmax, up-sampling, ...).
GENERAL_OPS: List[str] = [
    "convolution", "deconvolution", "pooling", "global_pooling", "softmax",
    "log_softmax", "softmax_cross_entropy", "batch_norm", "instance_norm",
    "l2_normalization", "lrn", "transpose", "flip", "pad", "tile", "repeat",
    "reverse", "expand_dims", "flatten", "slice", "slice_axis", "concat",
    "stack", "split", "swap_axis", "up_sampling", "roi_pooling", "crop",
    "embedding", "take", "one_hot", "sequence_mask", "sequence_reverse",
    "sequence_last", "dropout", "bilinear_sampler", "grid_generator",
    "correlation", "spatial_transformer", "fully_connected_backward",
    "convolution_backward", "pooling_backward", "softmax_output", "leaky_relu",
]

# 5 operators TDL cannot describe (sparse manipulation / dynamic output
# shapes / data-dependent indexing).
UNDESCRIBABLE_OPS = {
    "cast_storage": "sparse tensor manipulation",
    "sparse_retain": "sparse tensor manipulation",
    "boolean_mask": "dynamic output shape",
    "scatter_nd": "data-dependent indexing",
    "gather_nd": "data-dependent indexing",
}


@tdl_op(name="_catalog_reduce")
def _generic_reduction(data):
    return lambda i: Sum(lambda r: data[i, r])


@tdl_op(name="_catalog_general")
def _generic_general(data, weight):
    # Representative non-element-wise, non-reduction access pattern (the
    # operator reads its second input transposed).
    return lambda i, j: data[i, j] * weight[j, i]


@tdl_op(name="_catalog_opaque")
def _generic_opaque(data):
    fn = Opaque("opaque_kernel")
    return lambda b, i, j: fn(data[b, :, :])[i, j]


def build_mxnet_catalog() -> DescriptionRegistry:
    """Build a description registry with the MXNet v0.11 composition."""
    registry = DescriptionRegistry()
    for name in ELEMENTWISE_OPS:
        registry.register(tdl_elementwise(name, 1), name=name)
    for name in REDUCTION_OPS:
        registry.register(_clone(_generic_reduction, name), name=name)
    for name in OPAQUE_OPS:
        registry.register(_clone(_generic_opaque, name), name=name)
    for name in GENERAL_OPS:
        registry.register(_clone(_generic_general, name), name=name)
    for name, reason in UNDESCRIBABLE_OPS.items():
        registry.register_undescribable(name, reason)
    return registry


def _clone(description: TDLOperator, name: str) -> TDLOperator:
    return TDLOperator(
        name=name,
        input_names=description.input_names,
        output_vars=description.output_vars,
        body=description.body,
        reduction_vars=description.reduction_vars,
        has_opaque=description.has_opaque,
    )


def mxnet_catalog_counts() -> dict:
    """Coverage statistics of the reconstructed MXNet catalogue."""
    return build_mxnet_catalog().coverage_report()
