"""Shard-tiling conservation: shards must cover each tensor exactly.

The plan's per-step splits induce a grid partition of every tensor
(Sec 5.2).  ``split_dim`` rounds uneven splits *up* — the paper's convention
for non-divisible dimensions, where the first workers take the larger
shards — so mere unevenness is legal padding, not a violation.  The grid
stops conserving the tensor when a split names a dimension past the
tensor's rank (the split silently drops — a gap) or composes more parts
than the dimension has elements (whole shards of overlap: some worker's
shard carries no real data).  Splitting a size-*1* dimension is exempt —
that is the planner's replication convention for scalars (every worker
holds the whole value, e.g. the loss tensor of any training graph).
Those are the states this checker flags, together with plans whose
per-step parts do not multiply to the declared worker count.
"""

from __future__ import annotations

from typing import List

from repro.analysis.base import CheckContext, Finding

__all__ = ["check_shard_conservation"]

CHECK_NAME = "shard-conservation"


def check_shard_conservation(context: CheckContext) -> List[Finding]:
    """Verify the plan's shard grid tiles every tensor exactly.

    Emits ``ANA002_WORKER_MISMATCH`` when the product of per-step parts
    disagrees with the plan's declared worker count (or a step splits into
    fewer than one part), and ``ANA001_SHARD_TILING`` when a split names an
    out-of-range dimension or composes more parts than a dimension has
    elements (a graph is required for the per-tensor half; it is skipped
    without one).  Returns no findings when the context carries no plan.
    """
    plan = context.resolved_plan
    if plan is None:
        return []
    findings: List[Finding] = []

    product = 1
    for index, step in enumerate(plan.steps):
        if step.parts < 1:
            findings.append(
                Finding(
                    code="ANA002_WORKER_MISMATCH",
                    check=CHECK_NAME,
                    message=(
                        f"step {index} splits into {step.parts} part(s); "
                        f"every step needs at least 1"
                    ),
                )
            )
        product *= step.parts
    if plan.steps and product != plan.num_workers:
        findings.append(
            Finding(
                code="ANA002_WORKER_MISMATCH",
                check=CHECK_NAME,
                message=(
                    f"per-step parts multiply to {product} worker(s) but the "
                    f"plan declares num_workers={plan.num_workers}"
                ),
            )
        )

    graph = context.graph
    if graph is None:
        return findings
    for name, spec in graph.tensors.items():
        shape = tuple(spec.shape)
        grid = plan.tensor_grid(name)
        if not grid:
            continue
        for dim, parts in grid:
            if not 0 <= dim < len(shape):
                findings.append(
                    Finding(
                        code="ANA001_SHARD_TILING",
                        check=CHECK_NAME,
                        message=(
                            f"tensor {name!r} of shape {shape} is split "
                            f"along dimension {dim}, which is out of range "
                            f"— the split drops and leaves a coverage gap"
                        ),
                        node=name,
                    )
                )
        counts = plan.partition_counts(name, len(shape))
        for dim, count in enumerate(counts):
            if shape[dim] > 1 and count > shape[dim]:
                findings.append(
                    Finding(
                        code="ANA001_SHARD_TILING",
                        check=CHECK_NAME,
                        message=(
                            f"tensor {name!r} dimension {dim} has extent "
                            f"{shape[dim]} but is split {count} ways: shards "
                            f"overlap and some workers hold no real data"
                        ),
                        node=name,
                    )
                )
    return findings
