"""The verification driver: run checkers, report, warn, or raise.

:func:`verify_program` runs the registered checkers over one lowered
program (plus whatever context is available) and returns a
:class:`~repro.analysis.base.VerifyReport`; :func:`run_verify_pass` is the
post-lowering hook ``Executor.lower`` calls under
``ExecutorConfig(verify="warn"|"strict")`` — it is never reached on a
program-cache hit, so warm compiles pay nothing.  :func:`verify_model`
covers the CLI's other artifact: a saved ``CompiledModel``, which after a
``load()`` carries the plan and metadata but no task graph.

Built-in checkers register here at import time, mirroring how
``repro.costmodel.registry`` registers its built-in models.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

from repro import perf
from repro.analysis.base import CheckContext, Finding, VerifyReport
from repro.analysis.cachekey import check_cache_key_completeness
from repro.analysis.comm import check_comm_validity
from repro.analysis.memory import check_memory_plan
from repro.analysis.registry import (
    CheckerSpec,
    available_checkers,
    get_checker_spec,
    register_checker,
)
from repro.analysis.schedule import check_schedule_soundness
from repro.analysis.shards import check_shard_conservation
from repro.errors import AnalysisError

__all__ = [
    "VERIFY_MODES",
    "run_verify_pass",
    "validate_verify_mode",
    "verify_model",
    "verify_program",
]

#: The accepted ``ExecutorConfig.verify`` settings, weakest first.
VERIFY_MODES = ("off", "warn", "strict")


def validate_verify_mode(mode: str) -> str:
    """Return ``mode`` unchanged if it is a known verify mode.

    Raises:
        AnalysisError: (``ANA013_BAD_VERIFY_MODE``) for anything else.
    """
    if mode not in VERIFY_MODES:
        raise AnalysisError(
            f"unknown verify mode {mode!r} "
            f"(known: {', '.join(VERIFY_MODES)})",
            code="ANA013_BAD_VERIFY_MODE",
        )
    return mode


def _run_checkers(
    context: CheckContext, checkers: Optional[Sequence[str]]
) -> VerifyReport:
    names = list(checkers) if checkers is not None else available_checkers()
    findings: List[Finding] = []
    for name in names:
        spec = get_checker_spec(name)
        findings.extend(spec.check(context))
    return VerifyReport(findings=findings, checks_run=tuple(names))


def verify_program(
    program,
    *,
    graph=None,
    machine=None,
    plan=None,
    checkers: Optional[Sequence[str]] = None,
) -> VerifyReport:
    """Statically verify one lowered program.

    Args:
        program: The :class:`repro.runtime.LoweredProgram` to check.
        graph: The dataflow graph it was lowered from, when available —
            unlocks shard-divisibility and memory recomputation checks.
        machine: The machine model, when available (defaults to the
            program's own).
        plan: The partition plan, when available (defaults to the
            program's own).
        checkers: Checker names to run, in order; every registered checker
            (entry points included) by default.

    Returns:
        A :class:`~repro.analysis.base.VerifyReport`; inspect
        ``report.findings`` or call ``report.raise_first()``.
    """
    context = CheckContext(
        program=program, graph=graph, machine=machine, plan=plan
    )
    return _run_checkers(context, checkers)


def verify_model(model, *, checkers: Optional[Sequence[str]] = None) -> VerifyReport:
    """Statically verify a ``CompiledModel`` (fresh or reloaded).

    A model straight out of ``repro.compile`` still holds its lowered
    program and gets the full program checks; a model reloaded from disk
    carries the plan and program *metadata* only, so the checkers degrade
    to plan/machine-level checks, plus a metadata device-range sweep of the
    saved ``per_device_memory`` report.
    """
    if model.program is not None:
        report = _run_checkers(
            CheckContext(
                program=model.program,
                machine=model.machine,
                plan=model.plan,
            ),
            checkers,
        )
    else:
        report = _run_checkers(
            CheckContext(plan=model.plan, machine=model.machine), checkers
        )
        report.findings.extend(_check_metadata_memory(model))
    return report


def _check_metadata_memory(model) -> List[Finding]:
    """Device-range findings over a metadata-only model's saved report."""
    findings: List[Finding] = []
    machine = model.machine
    memory = model.metadata.get("per_device_memory")
    if machine is None or not isinstance(memory, dict):
        return findings
    for raw_device, budget in memory.items():
        try:
            device = int(raw_device)
        except (TypeError, ValueError):
            device = None
        if device is None or not -1 <= device < machine.num_devices:
            findings.append(
                Finding(
                    code="ANA009_DEVICE_RANGE",
                    check="memory-plan",
                    message=(
                        f"the saved memory report budgets device "
                        f"{raw_device!r}, outside a topology with "
                        f"{machine.num_devices} device(s)"
                    ),
                )
            )
        elif not isinstance(budget, (int, float)) or budget < 0:
            findings.append(
                Finding(
                    code="ANA010_MEMORY_COVERAGE",
                    check="memory-plan",
                    message=(
                        f"the saved memory report budgets device "
                        f"{raw_device!r} with {budget!r} bytes"
                    ),
                )
            )
    return findings


def run_verify_pass(
    program,
    *,
    graph=None,
    machine=None,
    plan=None,
    mode: str = "strict",
    checkers: Optional[Sequence[str]] = None,
) -> Optional[VerifyReport]:
    """The post-lowering verification hook.

    ``mode="off"`` returns ``None`` without running anything;
    ``mode="warn"`` runs the checkers and emits one ``UserWarning`` per
    report with every finding; ``mode="strict"`` raises a structured
    :class:`repro.errors.AnalysisError` for the first finding.  The pass
    shows up as ``pass.verify`` in profiling snapshots.

    Raises:
        AnalysisError: Under ``strict`` with findings, or for an unknown
            ``mode`` (``ANA013_BAD_VERIFY_MODE``).
    """
    validate_verify_mode(mode)
    if mode == "off":
        return None
    with perf.stage("pass.verify"):
        report = verify_program(
            program, graph=graph, machine=machine, plan=plan, checkers=checkers
        )
    if report.findings:
        if mode == "strict":
            report.raise_first()
        warnings.warn(
            f"program verification found problems:\n{report.summary()}",
            UserWarning,
            stacklevel=2,
        )
    return report


# ---------------------------------------------------------------- built-ins
register_checker(
    CheckerSpec(
        name="shard-conservation",
        check=check_shard_conservation,
        description="partition shards tile every tensor exactly "
        "(no overlap/gap, parts multiply to the worker count)",
        codes=("ANA001_SHARD_TILING", "ANA002_WORKER_MISMATCH"),
    )
)
register_checker(
    CheckerSpec(
        name="schedule-soundness",
        check=check_schedule_soundness,
        description="deps + after edges are acyclic and resolvable; "
        "pipeline slot orders are complete and deadlock-free",
        codes=(
            "ANA003_CYCLIC_SCHEDULE",
            "ANA004_DANGLING_DEP",
            "ANA005_SLOT_MULTIPLICITY",
            "ANA006_SCHEDULE_DEADLOCK",
        ),
    )
)
register_checker(
    CheckerSpec(
        name="comm-validity",
        check=check_comm_validity,
        description="comm tasks ride links the topology resolves, "
        "between real devices, never to themselves",
        codes=(
            "ANA007_BAD_LINK",
            "ANA008_SELF_TRANSFER",
            "ANA009_DEVICE_RANGE",
        ),
    )
)
register_checker(
    CheckerSpec(
        name="memory-plan",
        check=check_memory_plan,
        description="memory reports cover every compute device and are "
        "reproducible from liveness intervals",
        codes=(
            "ANA009_DEVICE_RANGE",
            "ANA010_MEMORY_COVERAGE",
            "ANA011_MEMORY_MISMATCH",
        ),
    )
)
register_checker(
    CheckerSpec(
        name="cache-key",
        check=check_cache_key_completeness,
        description="every ExecutorConfig/PlannerConfig field is cache-key "
        "covered or declared non-semantic",
        codes=("ANA012_CACHE_KEY_FIELD",),
    )
)
