"""Cache-key completeness: every config knob must be classified.

The plan and program caches key entries by content addresses built from an
explicit subset of ``PlannerConfig``/``ExecutorConfig`` fields.  A field
added to a config without touching the key scheme is the classic silent
staleness bug: two semantically different configs collide on one cache
entry.  The key schemes therefore declare, next to the key builders, which
config fields they cover (``KEY_COVERED_CONFIG_FIELDS``) and which are
deliberately non-semantic (``NON_SEMANTIC_CONFIG_FIELDS``); this checker
fails any field the declarations do not classify — and any declaration
naming a field that no longer exists.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.analysis.base import CheckContext, Finding

__all__ = ["check_cache_key_completeness"]

CHECK_NAME = "cache-key"


def _classify(
    config_type: type,
    covered: Sequence[str],
    non_semantic: Sequence[str],
    key_builder: str,
) -> List[Finding]:
    findings: List[Finding] = []
    field_names = {field.name for field in dataclasses.fields(config_type)}
    declared = set(covered) | set(non_semantic)
    for name in sorted(field_names - declared):
        findings.append(
            Finding(
                code="ANA012_CACHE_KEY_FIELD",
                check=CHECK_NAME,
                message=(
                    f"{config_type.__name__}.{name} is neither covered by "
                    f"{key_builder} nor declared non-semantic — classify it "
                    f"in KEY_COVERED_CONFIG_FIELDS or "
                    f"NON_SEMANTIC_CONFIG_FIELDS"
                ),
                node=f"{config_type.__name__}.{name}",
            )
        )
    for name in sorted(declared - field_names):
        findings.append(
            Finding(
                code="ANA012_CACHE_KEY_FIELD",
                check=CHECK_NAME,
                message=(
                    f"the {key_builder} declarations name "
                    f"{config_type.__name__}.{name}, which is not a config "
                    f"field (stale declaration)"
                ),
                node=f"{config_type.__name__}.{name}",
            )
        )
    overlap = sorted(set(covered) & set(non_semantic))
    for name in overlap:
        findings.append(
            Finding(
                code="ANA012_CACHE_KEY_FIELD",
                check=CHECK_NAME,
                message=(
                    f"{config_type.__name__}.{name} is declared both "
                    f"key-covered and non-semantic for {key_builder}"
                ),
                node=f"{config_type.__name__}.{name}",
            )
        )
    return findings


def check_cache_key_completeness(context: CheckContext) -> List[Finding]:
    """Verify every Planner/Executor config field is key-classified.

    Emits ``ANA012_CACHE_KEY_FIELD`` for config fields neither covered by
    the respective cache-key builder nor declared non-semantic, for
    declarations naming fields that no longer exist, and for fields
    declared both ways.  The context may substitute the config classes
    (``executor_config_type`` / ``planner_config_type``) — the seeded
    mutation corpus does — but the check always runs, so it needs no
    program or plan.
    """
    from repro.planner import cache as plan_cache
    from repro.planner.core import PlannerConfig
    from repro.runtime import cache as program_cache
    from repro.runtime.core import ExecutorConfig

    findings = _classify(
        context.executor_config_type or ExecutorConfig,
        program_cache.KEY_COVERED_CONFIG_FIELDS,
        program_cache.NON_SEMANTIC_CONFIG_FIELDS,
        "lowered_cache_key",
    )
    findings.extend(
        _classify(
            context.planner_config_type or PlannerConfig,
            plan_cache.KEY_COVERED_CONFIG_FIELDS,
            plan_cache.NON_SEMANTIC_CONFIG_FIELDS,
            "plan_cache_key",
        )
    )
    return findings
