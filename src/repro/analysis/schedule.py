"""Schedule soundness: task orderings must admit an execution.

Two halves.  Over any program: the union of data deps and ``after``
control edges must be acyclic and reference only tasks that exist.  Over a
micro-batch pipelined program: each stage's slot order must run every
``(phase, micro-batch)`` slot exactly once, and the composed ordering —
per-stage slot order plus the cross-stage micro-batch data dependencies —
must be deadlock-free (GPipe and 1F1B both are; a corrupted slot order that
runs a backward before its forward is not).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.analysis.base import CheckContext, Finding

__all__ = ["check_schedule_soundness"]

CHECK_NAME = "schedule-soundness"


def _kahn_cycle(edges: Dict[object, List[object]]) -> List[object]:
    """Nodes left unordered by Kahn's algorithm (members of / downstream of
    a cycle); empty for a DAG.  ``edges[n]`` lists nodes that must run
    before ``n``."""
    indegree = {node: 0 for node in edges}
    dependents: Dict[object, List[object]] = {node: [] for node in edges}
    for node, preds in edges.items():
        for pred in preds:
            if pred in indegree:
                indegree[node] += 1
                dependents[pred].append(node)
    queue = deque(node for node, degree in indegree.items() if degree == 0)
    ordered = 0
    while queue:
        node = queue.popleft()
        ordered += 1
        for dependent in dependents[node]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                queue.append(dependent)
    if ordered == len(edges):
        return []
    return [node for node, degree in indegree.items() if degree > 0]


def _check_task_graph(program) -> List[Finding]:
    findings: List[Finding] = []
    tasks = program.tasks
    edges: Dict[object, List[object]] = {}
    for name, task in tasks.items():
        preds: List[object] = []
        for dep in task.ordering_deps():
            if dep not in tasks:
                findings.append(
                    Finding(
                        code="ANA004_DANGLING_DEP",
                        check=CHECK_NAME,
                        message=(
                            f"task {name!r} is ordered after {dep!r}, which "
                            f"is not in the program"
                        ),
                        task=name,
                    )
                )
            else:
                preds.append(dep)
        edges[name] = preds
    stuck = _kahn_cycle(edges)
    if stuck:
        sample = sorted(str(node) for node in stuck)[:5]
        findings.append(
            Finding(
                code="ANA003_CYCLIC_SCHEDULE",
                check=CHECK_NAME,
                message=(
                    f"deps + after edges contain a cycle; {len(stuck)} "
                    f"task(s) cannot be ordered (e.g. {', '.join(sample)})"
                ),
                task=sample[0] if sample else None,
            )
        )
    return findings


def _check_pipeline_schedule(program) -> List[Finding]:
    schedule = program.schedule
    findings: List[Finding] = []
    num_stages = schedule.num_stages
    num_microbatches = schedule.num_microbatches
    if len(schedule.slots_of_stage) != num_stages:
        findings.append(
            Finding(
                code="ANA005_SLOT_MULTIPLICITY",
                check=CHECK_NAME,
                message=(
                    f"schedule declares {num_stages} stage(s) but carries "
                    f"slot orders for {len(schedule.slots_of_stage)}"
                ),
            )
        )
        return findings

    expected = {
        (phase, m)
        for phase in ("fwd", "bwd")
        for m in range(num_microbatches)
    }
    for stage, slots in enumerate(schedule.slots_of_stage):
        seen: Dict[Tuple[str, int], int] = {}
        for slot in slots:
            seen[tuple(slot)] = seen.get(tuple(slot), 0) + 1
        duplicated = sorted(s for s, count in seen.items() if count > 1)
        missing = sorted(expected - set(seen))
        spurious = sorted(set(seen) - expected)
        for kind, slots_bad in (
            ("runs", duplicated),
            ("misses", missing),
            ("includes unknown", spurious),
        ):
            if slots_bad:
                findings.append(
                    Finding(
                        code="ANA005_SLOT_MULTIPLICITY",
                        check=CHECK_NAME,
                        message=(
                            f"stage {stage} {kind} slot(s) "
                            f"{slots_bad[:4]}: every (phase, micro-batch) "
                            f"must be scheduled exactly once"
                        ),
                    )
                )
    if findings:
        return findings

    # Deadlock-freedom: per-stage slot order composed with the micro-batch
    # data dependencies (fwd flows down the stages, bwd flows back up, a
    # stage's bwd needs its own fwd's stashed activations).
    edges: Dict[Tuple[int, str, int], List[Tuple[int, str, int]]] = {}
    for stage, slots in enumerate(schedule.slots_of_stage):
        previous = None
        for phase, m in slots:
            key = (stage, phase, m)
            preds = edges.setdefault(key, [])
            if previous is not None:
                preds.append(previous)
            if phase == "fwd" and stage > 0:
                preds.append((stage - 1, "fwd", m))
            if phase == "bwd":
                preds.append((stage, "fwd", m))
                if stage < num_stages - 1:
                    preds.append((stage + 1, "bwd", m))
            previous = key
    stuck = _kahn_cycle(edges)
    if stuck:
        sample = sorted(stuck)[:3]
        findings.append(
            Finding(
                code="ANA006_SCHEDULE_DEADLOCK",
                check=CHECK_NAME,
                message=(
                    f"the slot order conflicts with micro-batch data "
                    f"dependencies: {len(stuck)} slot(s) can never run "
                    f"(e.g. {sample})"
                ),
            )
        )
    return findings


def check_schedule_soundness(context: CheckContext) -> List[Finding]:
    """Verify the program's task ordering admits an execution.

    Emits ``ANA004_DANGLING_DEP`` for deps/``after`` edges naming unknown
    tasks, ``ANA003_CYCLIC_SCHEDULE`` when the ordering edges contain a
    cycle, ``ANA005_SLOT_MULTIPLICITY`` when a pipeline stage's slot order
    does not run every (phase, micro-batch) exactly once, and
    ``ANA006_SCHEDULE_DEADLOCK`` when the slot order conflicts with the
    micro-batch data dependencies.  Returns no findings when the context
    carries no program.
    """
    program = context.program
    if program is None:
        return []
    findings = _check_task_graph(program)
    if getattr(program, "schedule", None) is not None:
        findings.extend(_check_pipeline_schedule(program))
    return findings
