"""The stable error-code catalogue of the static verifier.

Every finding a checker can produce carries exactly one code from this
table.  Codes are stable identifiers — greppable in logs, referenced from
``docs/verifier.md``, and asserted by the seeded-mutation tests — so they
are never renumbered or reused; retired codes are removed, new checks get
new numbers.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["ERROR_CODES", "describe_code"]

#: code -> one-line description, mirrored in docs/verifier.md.
ERROR_CODES: Dict[str, str] = {
    "ANA000_ANALYSIS": "generic analysis failure (bad verify mode, driver errors)",
    "ANA001_SHARD_TILING": (
        "a partition step splits a tensor dimension that is out of range "
        "(the split drops — a gap) or into more parts than the dimension "
        "has elements (whole shards of overlap)"
    ),
    "ANA002_WORKER_MISMATCH": (
        "the product of the plan's per-step parts does not equal the plan's "
        "declared worker count"
    ),
    "ANA003_CYCLIC_SCHEDULE": (
        "the task graph's deps + after edges contain a cycle, so no "
        "execution order exists"
    ),
    "ANA004_DANGLING_DEP": (
        "a task depends on (or is ordered after) a task name that is not in "
        "the program"
    ),
    "ANA005_SLOT_MULTIPLICITY": (
        "a pipeline stage's slot order does not run every (phase, "
        "micro-batch) slot exactly once"
    ),
    "ANA006_SCHEDULE_DEADLOCK": (
        "the pipeline slot order conflicts with micro-batch data "
        "dependencies — the schedule deadlocks"
    ),
    "ANA007_BAD_LINK": (
        "a comm task's channel or link does not match what the topology's "
        "link_between resolves for its endpoints"
    ),
    "ANA008_SELF_TRANSFER": (
        "a link-resolved comm task transfers from a device to itself"
    ),
    "ANA009_DEVICE_RANGE": (
        "a task or memory-report entry names a device index outside the "
        "machine model"
    ),
    "ANA010_MEMORY_COVERAGE": (
        "the per-device memory report misses a device that runs compute "
        "tasks, or carries a negative budget"
    ),
    "ANA011_MEMORY_MISMATCH": (
        "the declared per-device/per-stage peak memory is not reproducible "
        "from the program's graph and plan"
    ),
    "ANA012_CACHE_KEY_FIELD": (
        "an ExecutorConfig/PlannerConfig field is neither covered by the "
        "cache key nor declared non-semantic"
    ),
    "ANA013_BAD_VERIFY_MODE": (
        "ExecutorConfig.verify is not one of off | warn | strict"
    ),
    "ANA014_UNKNOWN_ARTIFACT": (
        "tofu-repro verify's argument is neither a saved-model file nor a "
        "cached program key"
    ),
}


def describe_code(code: str) -> str:
    """One-line description of a verifier error code (empty when unknown)."""
    return ERROR_CODES.get(code, "")
