"""Data model of the static verifier: findings, reports, check contexts.

A checker is a plain function ``(CheckContext) -> List[Finding]``.  It never
raises on a bad artifact — it *returns* findings, and the driver
(:mod:`repro.analysis.verify`) decides whether to warn or raise depending on
the configured mode.  Checkers degrade gracefully: when the context lacks an
input a check needs (no graph, no machine model), that check is skipped
rather than failed, so the same checkers run on a freshly lowered program,
a cached program, and a metadata-only saved model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import AnalysisError

__all__ = ["CheckContext", "Finding", "VerifyReport"]


@dataclass(frozen=True)
class Finding:
    """One invariant violation reported by a checker.

    Attributes:
        code: Stable error code (see :data:`repro.analysis.ERROR_CODES`).
        check: Registry name of the checker that produced the finding.
        message: Human-readable description of the violation.
        task: Offending task name, when one can be named.
        node: Offending graph node or tensor name, when one can be named.
    """

    code: str
    check: str
    message: str
    task: Optional[str] = None
    node: Optional[str] = None

    def __str__(self) -> str:
        where = ""
        if self.task is not None:
            where = f" (task {self.task!r})"
        elif self.node is not None:
            where = f" (node {self.node!r})"
        return f"[{self.code}] {self.check}: {self.message}{where}"


@dataclass
class CheckContext:
    """Everything a checker may inspect for one verification run.

    Only :attr:`program` *or* :attr:`plan` is required; the rest is optional
    context that unlocks deeper checks (a graph enables shard-divisibility
    and memory recomputation, a machine model enables link resolution).

    Attributes:
        program: The lowered program under verification, if any.
        graph: The dataflow graph the program was lowered from, if known.
        machine: The machine/cluster model, if known (falls back to
            ``program.machine``).
        plan: The partition plan, if known (falls back to ``program.plan``).
        executor_config_type: Config class checked for cache-key
            completeness (defaults to ``ExecutorConfig``).
        planner_config_type: Config class checked for cache-key
            completeness (defaults to ``PlannerConfig``).
    """

    program: Optional[object] = None
    graph: Optional[object] = None
    machine: Optional[object] = None
    plan: Optional[object] = None
    executor_config_type: Optional[type] = None
    planner_config_type: Optional[type] = None

    @property
    def resolved_machine(self):
        """The machine model to check against: explicit context first, the
        program's own machine otherwise, ``None`` when neither is known."""
        if self.machine is not None:
            return self.machine
        if self.program is not None:
            return getattr(self.program, "machine", None)
        return None

    @property
    def resolved_plan(self):
        """The partition plan to check: explicit context first, then the
        program's plan, ``None`` when neither is known."""
        if self.plan is not None:
            return self.plan
        if self.program is not None:
            return getattr(self.program, "plan", None)
        return None


@dataclass
class VerifyReport:
    """The outcome of one verification run.

    Attributes:
        findings: Every violation found, in checker order.
        checks_run: Names of the checkers that ran, in order.
    """

    findings: List[Finding] = field(default_factory=list)
    checks_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no checker reported a violation."""
        return not self.findings

    def raise_first(self) -> None:
        """Raise a structured :class:`repro.errors.AnalysisError` for the
        first finding (no-op on a clean report); the error message appends
        how many further findings the report holds."""
        if not self.findings:
            return
        first = self.findings[0]
        extra = len(self.findings) - 1
        suffix = f" (+{extra} more finding(s))" if extra else ""
        raise AnalysisError(
            f"{first}{suffix}",
            code=first.code,
            check=first.check,
            task=first.task,
            node=first.node,
        )

    def summary(self) -> str:
        """One line per finding, headed by a checks/findings count."""
        lines = [
            f"{len(self.checks_run)} check(s) run, "
            f"{len(self.findings)} finding(s)"
        ]
        lines.extend(str(finding) for finding in self.findings)
        return "\n".join(lines)
