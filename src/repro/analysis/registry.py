"""The string-keyed registry of static checkers.

Follows the exact spec pattern of :mod:`repro.costmodel.registry`: built-in
checkers register at import time (:mod:`repro.analysis.verify` pulls them
in), third parties add checkers through the ``repro.analysis_checkers``
entry-point group.  A checker is a function ``(CheckContext) ->
List[Finding]`` — see :mod:`repro.analysis.base` for the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.base import CheckContext, Finding
from repro.errors import AnalysisError
from repro.plugins import BackendRegistry

__all__ = [
    "CheckerSpec",
    "available_checkers",
    "get_checker_spec",
    "load_entry_point_checkers",
    "register_checker",
    "unregister_checker",
]

#: Entry-point group third-party packages advertise checkers through.
ENTRY_POINT_GROUP = "repro.analysis_checkers"


@dataclass(frozen=True)
class CheckerSpec:
    """Registry entry for one static checker.

    Attributes:
        name: Registry key (what ``verify_program(checkers=[...])`` names).
        check: The checker function; takes a
            :class:`~repro.analysis.base.CheckContext`, returns findings.
        description: One line for ``available_checkers`` listings and the
            registry-hygiene lint.
        codes: The error codes this checker can emit (documentation and
            test cross-referencing; not enforced at run time).
    """

    name: str
    check: Callable[[CheckContext], List[Finding]]
    description: str = ""
    codes: Optional[Sequence[str]] = None


def _make_entry_point_spec(name: str, check: Callable) -> CheckerSpec:
    return CheckerSpec(
        name=name,
        check=check,
        description=f"entry-point analysis checker {name!r}",
    )


_REGISTRY = BackendRegistry(
    kind="analysis-checker",
    error_cls=AnalysisError,
    entry_point_group=ENTRY_POINT_GROUP,
    spec_type=CheckerSpec,
    make_spec=_make_entry_point_spec,
)


def register_checker(spec: CheckerSpec, *, replace: bool = False) -> CheckerSpec:
    """Register a static checker.

    Args:
        spec: The spec to add.
        replace: Allow overriding an existing checker of the same name.

    Returns:
        The spec, for decorator-style use.

    Raises:
        AnalysisError: When the name is taken and ``replace`` is false.
    """
    return _REGISTRY.register(spec, replace=replace)


def unregister_checker(name: str) -> None:
    """Remove a checker (no-op when absent)."""
    _REGISTRY.unregister(name)


def get_checker_spec(name: str) -> CheckerSpec:
    """Look up a checker by name, pulling in entry points on a miss.

    Raises:
        AnalysisError: For an unknown checker (message lists what is
            registered).
    """
    return _REGISTRY.get(name)


def available_checkers() -> List[str]:
    """Sorted names of every registered checker (entry points included)."""
    return _REGISTRY.available()


def load_entry_point_checkers(*, reload: bool = False) -> List[str]:
    """Load the ``repro.analysis_checkers`` entry-point group; returns the
    names added."""
    return _REGISTRY.load_entry_points(reload=reload)
