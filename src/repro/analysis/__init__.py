"""``repro.analysis`` — static verification of compiler artifacts.

A registry of string-keyed checkers (the :mod:`repro.costmodel` spec
pattern) that run over plans, lowered programs, schedules, and machine
models *without simulating*: shard-tiling conservation, schedule soundness
and pipeline deadlock-freedom, comm-link validity, memory-plan
reproducibility, and cache-key completeness.  The checkers back three
surfaces:

* ``ExecutorConfig(verify="off"|"warn"|"strict")`` — a post-lowering pass
  in ``Executor.lower`` (skipped on program-cache hits);
* ``CompileService(verify=...)`` — every served program is verified before
  it is cached or returned;
* ``tofu-repro verify <saved-model-or-cache-key>`` — offline verification
  of saved artifacts.

Each finding carries a stable error code (``ANA003_CYCLIC_SCHEDULE``
style); the catalogue lives in :data:`ERROR_CODES` and ``docs/verifier.md``.
"""

from repro.analysis.base import CheckContext, Finding, VerifyReport
from repro.analysis.codes import ERROR_CODES, describe_code
from repro.analysis.registry import (
    CheckerSpec,
    available_checkers,
    get_checker_spec,
    load_entry_point_checkers,
    register_checker,
    unregister_checker,
)
from repro.analysis.verify import (
    VERIFY_MODES,
    run_verify_pass,
    validate_verify_mode,
    verify_model,
    verify_program,
)
from repro.errors import AnalysisError

__all__ = [
    "AnalysisError",
    "CheckContext",
    "CheckerSpec",
    "ERROR_CODES",
    "Finding",
    "VERIFY_MODES",
    "VerifyReport",
    "available_checkers",
    "describe_code",
    "get_checker_spec",
    "load_entry_point_checkers",
    "register_checker",
    "run_verify_pass",
    "unregister_checker",
    "validate_verify_mode",
    "verify_model",
    "verify_program",
]
