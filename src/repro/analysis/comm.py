"""Comm validity: every transfer must ride a link the topology has.

A comm task is either *channel-named* (``p2p`` / ``cpu``, resolved to a
queue at simulation time) or *link-resolved* (it carries the concrete
:class:`repro.sim.device.Link` plus source and destination devices — the
form the multi-machine passes emit).  A link-resolved task is valid when
its endpoints are real devices, it does not transfer to itself, and its
link is exactly what ``link_between(src, dst)`` resolves on the machine
model — i.e. the transfer crosses an edge the topology actually has.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.base import CheckContext, Finding
from repro.errors import ReproError
from repro.sim.engine import CHANNELS, HOST_DEVICE

__all__ = ["check_comm_validity"]

CHECK_NAME = "comm-validity"


def _device_in_range(device: Optional[int], machine) -> bool:
    if device is None:
        return False
    if device == HOST_DEVICE:
        return True
    return 0 <= device < machine.num_devices


def check_comm_validity(context: CheckContext) -> List[Finding]:
    """Verify every comm task's channel/link against the machine model.

    Emits ``ANA007_BAD_LINK`` for unknown channels, ``net``-channel tasks
    missing their resolved link, link-resolved tasks missing endpoints, and
    links that differ from what ``link_between(src, dst)`` resolves;
    ``ANA008_SELF_TRANSFER`` for a device transferring to itself; and
    ``ANA009_DEVICE_RANGE`` for task devices or endpoints outside the
    machine model.  Link resolution needs a machine model (from the context
    or the program itself); without one only channel names are checked.
    Returns no findings when the context carries no program.
    """
    program = context.program
    if program is None:
        return []
    machine = context.resolved_machine
    findings: List[Finding] = []
    for name, task in program.tasks.items():
        if machine is not None and not _device_in_range(task.device, machine):
            findings.append(
                Finding(
                    code="ANA009_DEVICE_RANGE",
                    check=CHECK_NAME,
                    message=(
                        f"task {name!r} runs on device {task.device}, "
                        f"outside a topology with "
                        f"{machine.num_devices} device(s)"
                    ),
                    task=name,
                )
            )
        if task.kind != "comm":
            continue
        if task.channel not in CHANNELS:
            findings.append(
                Finding(
                    code="ANA007_BAD_LINK",
                    check=CHECK_NAME,
                    message=(
                        f"comm task {name!r} uses unknown channel "
                        f"{task.channel!r} (known: {', '.join(CHANNELS)})"
                    ),
                    task=name,
                )
            )
            continue
        if task.link is None:
            if task.channel == "net":
                findings.append(
                    Finding(
                        code="ANA007_BAD_LINK",
                        check=CHECK_NAME,
                        message=(
                            f"comm task {name!r} claims the inter-machine "
                            f"'net' channel but carries no resolved link"
                        ),
                        task=name,
                    )
                )
            continue
        if task.src_device is None or task.dst_device is None:
            findings.append(
                Finding(
                    code="ANA007_BAD_LINK",
                    check=CHECK_NAME,
                    message=(
                        f"link-resolved comm task {name!r} is missing its "
                        f"src/dst devices"
                    ),
                    task=name,
                )
            )
            continue
        if task.src_device == task.dst_device:
            findings.append(
                Finding(
                    code="ANA008_SELF_TRANSFER",
                    check=CHECK_NAME,
                    message=(
                        f"comm task {name!r} transfers from device "
                        f"{task.src_device} to itself"
                    ),
                    task=name,
                )
            )
            continue
        if machine is None:
            continue
        in_range = _device_in_range(
            task.src_device, machine
        ) and _device_in_range(task.dst_device, machine)
        if not in_range:
            findings.append(
                Finding(
                    code="ANA009_DEVICE_RANGE",
                    check=CHECK_NAME,
                    message=(
                        f"comm task {name!r} endpoints "
                        f"{task.src_device}->{task.dst_device} are outside "
                        f"a topology with {machine.num_devices} device(s)"
                    ),
                    task=name,
                )
            )
            continue
        try:
            expected = machine.link_between(task.src_device, task.dst_device)
        except ReproError as exc:
            findings.append(
                Finding(
                    code="ANA007_BAD_LINK",
                    check=CHECK_NAME,
                    message=(
                        f"comm task {name!r}: the topology cannot resolve a "
                        f"{task.src_device}->{task.dst_device} link ({exc})"
                    ),
                    task=name,
                )
            )
            continue
        if expected != task.link:
            findings.append(
                Finding(
                    code="ANA007_BAD_LINK",
                    check=CHECK_NAME,
                    message=(
                        f"comm task {name!r} rides link "
                        f"{task.link.kind}:{task.link.key}, but the topology "
                        f"resolves {task.src_device}->{task.dst_device} to "
                        f"{expected.kind}:{expected.key}"
                    ),
                    task=name,
                )
            )
    return findings
