"""Memory-plan soundness: the declared budgets must be reproducible.

The memory report is the contract between lowering and simulation: the
simulator verdicts OOM from ``per_device_memory`` without replaying
liveness.  This checker re-derives the report from the program's own
artifacts — the liveness-interval memory plan of the sharded graph plus the
comm staging buffer for ``tofu-partitioned`` programs, the per-stage
liveness report for ``pipeline`` programs — and flags a report the
artifacts cannot explain, along with coverage holes (compute devices with
no declared budget) and nonsense budgets (negative bytes, unknown
devices).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.base import CheckContext, Finding
from repro.runtime.passes import memory_plan_of, stage_memory_report
from repro.sim.engine import HOST_DEVICE

__all__ = ["check_memory_plan"]

CHECK_NAME = "memory-plan"

#: The staging factors generate_partitioned_graph charges for comm buffers
#: (fused MultiFetch vs the split/copy/concat path, Sec 6).
_STAGING_FACTORS = (2.0, 5.0)


def _partitioned_candidates(partitioned) -> List[Dict[int, int]]:
    """Every memory report generate_partitioned_graph could have produced
    for this partitioned graph (fused x reuse lowering variants)."""
    num_devices = partitioned.num_devices
    fetch = partitioned.fetch_bytes_per_node
    reduce_ = partitioned.reduce_bytes_per_node
    max_fetch_per_device = (
        max((fetch[n] + reduce_.get(n, 0.0)) / num_devices for n in fetch)
        if fetch
        else 0.0
    )
    candidates = []
    for allow_reuse in (True, False):
        peak = memory_plan_of(
            partitioned.sharded_graph, allow_reuse=allow_reuse
        ).peak_bytes
        for staging in _STAGING_FACTORS:
            buffer_bytes = int(staging * max_fetch_per_device)
            candidates.append(
                {d: peak + buffer_bytes for d in range(num_devices)}
            )
    return candidates


def _check_partitioned(program) -> List[Finding]:
    partitioned = program.partitioned
    candidates = _partitioned_candidates(partitioned)
    if partitioned.per_device_memory not in candidates:
        declared = partitioned.per_device_peak_bytes
        return [
            Finding(
                code="ANA011_MEMORY_MISMATCH",
                check=CHECK_NAME,
                message=(
                    f"declared per-device peak {declared} bytes is not "
                    f"reproducible from the sharded graph's liveness plan "
                    f"(candidate peaks: "
                    f"{sorted({max(c.values(), default=0) for c in candidates})})"
                ),
            )
        ]
    return []


def _stage_devices_of(program) -> Optional[Dict[int, int]]:
    """stage -> device, recovered from the program's own task placement."""
    stage_of_node = program.stage_of_node
    devices: Dict[int, int] = {}
    for node, stage in stage_of_node.items():
        task = program.tasks.get(f"{node}#mb0") or program.tasks.get(node)
        if task is None:
            return None
        existing = devices.get(stage)
        if existing is not None and existing != task.device:
            return None
        devices[stage] = task.device
    return devices


def _check_pipeline(program, graph) -> List[Finding]:
    schedule = program.schedule
    stage_devices = _stage_devices_of(program)
    if stage_devices is None:
        return []
    report = stage_memory_report(
        graph,
        program.stage_of_node,
        schedule.num_stages,
        num_microbatches=program.num_microbatches,
        schedule=schedule,
    )
    expected = {
        stage_devices[stage]: report[stage]
        for stage in range(schedule.num_stages)
        if stage in stage_devices
    }
    if expected != dict(program.per_device_memory):
        return [
            Finding(
                code="ANA011_MEMORY_MISMATCH",
                check=CHECK_NAME,
                message=(
                    f"declared per-stage peaks {dict(program.per_device_memory)} "
                    f"differ from the report recomputed from the graph's "
                    f"liveness intervals {expected}"
                ),
            )
        ]
    return []


def check_memory_plan(context: CheckContext) -> List[Finding]:
    """Verify the program's memory report is consistent and reproducible.

    Emits ``ANA010_MEMORY_COVERAGE`` for negative budgets and for compute
    devices with no declared budget (when the program opts into memory
    checking), ``ANA009_DEVICE_RANGE`` for report entries naming devices
    outside the machine model, and ``ANA011_MEMORY_MISMATCH`` when the
    declared peaks cannot be re-derived from the program's own sharded
    graph (``tofu-partitioned``) or the graph's per-stage liveness report
    (``pipeline``; needs the graph in the context).  Returns no findings
    when the context carries no program.
    """
    program = context.program
    if program is None:
        return []
    findings: List[Finding] = []
    memory = program.per_device_memory

    for device, budget in memory.items():
        if budget < 0:
            findings.append(
                Finding(
                    code="ANA010_MEMORY_COVERAGE",
                    check=CHECK_NAME,
                    message=(
                        f"device {device} declares a negative memory budget "
                        f"({budget} bytes)"
                    ),
                )
            )
    machine = context.resolved_machine
    if machine is not None:
        for device in memory:
            if device != HOST_DEVICE and not 0 <= device < machine.num_devices:
                findings.append(
                    Finding(
                        code="ANA009_DEVICE_RANGE",
                        check=CHECK_NAME,
                        message=(
                            f"the memory report budgets device {device}, "
                            f"outside a topology with "
                            f"{machine.num_devices} device(s)"
                        ),
                    )
                )

    if program.check_memory:
        compute_devices = {
            task.device
            for task in program.tasks.values()
            if task.kind == "compute" and task.device != HOST_DEVICE
        }
        for device in sorted(compute_devices - set(memory)):
            findings.append(
                Finding(
                    code="ANA010_MEMORY_COVERAGE",
                    check=CHECK_NAME,
                    message=(
                        f"device {device} runs compute tasks but the memory "
                        f"report declares no budget for it"
                    ),
                )
            )

    if program.partitioned is not None and program.backend == "tofu-partitioned":
        findings.extend(_check_partitioned(program))
    elif (
        program.backend == "pipeline"
        and context.graph is not None
        and program.schedule is not None
        and program.stage_of_node
    ):
        findings.extend(_check_pipeline(program, context.graph))
    return findings
