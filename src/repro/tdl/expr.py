"""Abstract syntax tree for the Tensor Description Language (TDL).

TDL follows the paper's "tensor-as-a-lambda" idea (Sec 4.1): the output of an
operator is a lambda from index variables to a scalar expression over the
inputs.  Expressions are side-effect free and consist of index variables,
tensor element accesses, arithmetic, reductions and opaque function calls.

The AST deliberately supports only what the analysis needs; it is not a code
generator (unlike TVM / Tensor Comprehensions, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.errors import TDLError

Number = Union[int, float]


class Expr:
    """Base class of all TDL expressions."""

    # Arithmetic sugar so descriptions read naturally (a[i] * b[i] + 1).
    def __add__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("+", self, wrap(other))

    def __radd__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("+", wrap(other), self)

    def __sub__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("-", self, wrap(other))

    def __rsub__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("-", wrap(other), self)

    def __mul__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("*", self, wrap(other))

    def __rmul__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("*", wrap(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("/", self, wrap(other))

    def __rtruediv__(self, other: "ExprLike") -> "BinaryOp":
        return BinaryOp("/", wrap(other), self)

    def __neg__(self) -> "BinaryOp":
        return BinaryOp("*", Const(-1), self)

    def children(self) -> Sequence["Expr"]:
        return ()


ExprLike = Union[Expr, Number]


def wrap(value: ExprLike) -> Expr:
    """Coerce Python numbers into :class:`Const` expressions."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise TDLError(f"cannot use {value!r} in a TDL expression")


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: Number


@dataclass(frozen=True, eq=False)
class IndexVar(Expr):
    """An index variable: either an output index or a reduction index.

    Each index variable ranges over ``[0, extent)`` where the extent is
    symbolic during analysis (Sec 4.2).
    """

    name: str
    kind: str = "output"  # "output" | "reduction"

    def __repr__(self) -> str:
        return f"IndexVar({self.name}, {self.kind})"


class TensorArg:
    """Placeholder for an operator input tensor inside a TDL description.

    Indexing a :class:`TensorArg` produces a :class:`TensorAccess` expression.
    ``tensor[b, :, :]`` (slices) is syntactic sugar used by opaque-function
    descriptions such as ``batch_cholesky``.
    """

    def __init__(self, name: str, position: int):
        self.name = name
        self.position = position

    def __getitem__(self, indices) -> "TensorAccess":
        if not isinstance(indices, tuple):
            indices = (indices,)
        parsed: List[Union[Expr, "FullSlice"]] = []
        for idx in indices:
            if isinstance(idx, slice):
                if idx.start is not None or idx.stop is not None or idx.step is not None:
                    raise TDLError("only full slices ':' are supported in TDL")
                parsed.append(FullSlice())
            else:
                parsed.append(wrap(idx))
        return TensorAccess(self, tuple(parsed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TensorArg({self.name})"


@dataclass(frozen=True)
class FullSlice:
    """Marker for a ``:`` (whole dimension) index."""


@dataclass(frozen=True, eq=False)
class TensorAccess(Expr):
    """An element (or slice) read of an input tensor."""

    tensor: TensorArg
    indices: Tuple[Union[Expr, FullSlice], ...]

    def children(self) -> Sequence[Expr]:
        return tuple(i for i in self.indices if isinstance(i, Expr))


@dataclass(frozen=True, eq=False)
class BinaryOp(Expr):
    """Arithmetic between two TDL expressions."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/", "max", "min", "pow"):
            raise TDLError(f"unsupported arithmetic operator {self.op!r}")

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """A call to a scalar builtin (exp, log, sqrt, tanh, ...)."""

    fn: str
    args: Tuple[Expr, ...]

    def children(self) -> Sequence[Expr]:
        return self.args


@dataclass(frozen=True, eq=False)
class Reduce(Expr):
    """Reduction of an inner lambda over one or more reduction variables."""

    reducer: str  # "sum" | "max" | "min" | "prod"
    variables: Tuple[IndexVar, ...]
    body: Expr

    def children(self) -> Sequence[Expr]:
        return (self.body,)


@dataclass(frozen=True, eq=False)
class OpaqueCall(Expr):
    """A call to an opaque function over tensor slices (Sec 4.1).

    Opaque calls hide the computation entirely; the only information the
    analysis can exploit is which indices select the slice (e.g. the batch
    dimension of ``batch_cholesky``) and which indices address the result.
    """

    fn_name: str
    arguments: Tuple[TensorAccess, ...]
    result_indices: Tuple[Expr, ...] = field(default=())

    def __getitem__(self, indices) -> "OpaqueCall":
        if not isinstance(indices, tuple):
            indices = (indices,)
        parsed = tuple(wrap(i) for i in indices)
        return OpaqueCall(self.fn_name, self.arguments, parsed)

    def children(self) -> Sequence[Expr]:
        out: List[Expr] = list(self.arguments)
        out.extend(self.result_indices)
        return tuple(out)


def walk(expr: Expr):
    """Yield every sub-expression of ``expr`` (pre-order)."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def find_tensor_accesses(expr: Expr) -> List[TensorAccess]:
    """All tensor element accesses appearing in ``expr``."""
    return [e for e in walk(expr) if isinstance(e, TensorAccess)]


def find_reductions(expr: Expr) -> List[Reduce]:
    """All reduction nodes appearing in ``expr``."""
    return [e for e in walk(expr) if isinstance(e, Reduce)]


def find_opaque_calls(expr: Expr) -> List[OpaqueCall]:
    """All opaque function calls appearing in ``expr``."""
    return [e for e in walk(expr) if isinstance(e, OpaqueCall)]
