"""Tensor Description Language (TDL).

The public surface mirrors the paper's examples::

    from repro import tdl
    from repro.tdl import Sum

    @tdl.op
    def conv1d(data, filters):
        return lambda b, co, x: Sum(
            lambda ci, dx: data[b, ci, x + dx] * filters[ci, co, dx])
"""

from repro.tdl.expr import (
    BinaryOp,
    Call,
    Const,
    Expr,
    FullSlice,
    IndexVar,
    OpaqueCall,
    Reduce,
    TensorAccess,
    TensorArg,
    find_reductions,
    find_tensor_accesses,
    walk,
)
from repro.tdl.lang import Opaque, TDLOperator, build_description, elementwise, op
from repro.tdl.reducers import Max, Min, Prod, Sum
from repro.tdl.registry import (
    DescriptionEntry,
    DescriptionRegistry,
    GLOBAL_REGISTRY,
    get_description,
    register_description,
)

__all__ = [
    "BinaryOp",
    "Call",
    "Const",
    "DescriptionEntry",
    "DescriptionRegistry",
    "Expr",
    "FullSlice",
    "GLOBAL_REGISTRY",
    "IndexVar",
    "Max",
    "Min",
    "Opaque",
    "OpaqueCall",
    "Prod",
    "Reduce",
    "Sum",
    "TDLOperator",
    "TensorAccess",
    "TensorArg",
    "build_description",
    "elementwise",
    "find_reductions",
    "find_tensor_accesses",
    "get_description",
    "op",
    "register_description",
    "walk",
]
