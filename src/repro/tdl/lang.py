"""The ``@tdl.op`` decorator and the :class:`TDLOperator` description object.

A TDL description is written as a Python function whose arguments are the
operator's input tensors and whose return value is a lambda from output index
variables to a TDL expression, exactly like the examples in Figure 3 of the
paper::

    @tdl.op
    def conv1d(data, filters):
        return lambda b, co, x: Sum(
            lambda ci, dx: data[b, ci, x + dx] * filters[ci, co, dx])

    @tdl.op
    def batch_cholesky(batch_mat):
        cholesky = tdl.Opaque("cholesky")
        return lambda b, i, j: cholesky(batch_mat[b, :, :])[i, j]
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import TDLError
from repro.tdl.expr import (
    Expr,
    FullSlice,
    IndexVar,
    OpaqueCall,
    Reduce,
    TensorAccess,
    TensorArg,
    find_opaque_calls,
    find_reductions,
    find_tensor_accesses,
    wrap,
)


class Opaque:
    """Factory for opaque function calls (Sec 4.1, ``tofu.Opaque()``).

    Calling the opaque object with tensor slices produces an
    :class:`OpaqueCall`, which can then be indexed with output variables.
    """

    def __init__(self, name: str = "opaque"):
        self.name = name

    def __call__(self, *slices: TensorAccess) -> OpaqueCall:
        for s in slices:
            if not isinstance(s, TensorAccess):
                raise TDLError("opaque functions take tensor slices as arguments")
        return OpaqueCall(self.name, tuple(slices))


@dataclass
class TDLOperator:
    """The analysed form of a TDL description.

    Attributes:
        name: Operator name.
        input_names: Names of the input tensor arguments, in order.
        output_vars: Output index variables, in output dimension order.
        body: The TDL expression defining one output element.
        reduction_vars: Reduction index variables, in the order encountered.
        has_opaque: Whether the description uses an opaque function.
    """

    name: str
    input_names: List[str]
    output_vars: List[IndexVar]
    body: Expr
    reduction_vars: List[IndexVar] = field(default_factory=list)
    has_opaque: bool = False

    # ------------------------------------------------------------ properties
    @property
    def output_ndim(self) -> int:
        return len(self.output_vars)

    def tensor_accesses(self) -> List[TensorAccess]:
        return find_tensor_accesses(self.body)

    def reductions(self) -> List[Reduce]:
        return find_reductions(self.body)

    def is_elementwise(self) -> bool:
        """True when every input is accessed exactly at the output indices.

        Element-wise operators are the ones graph coarsening coalesces
        (Sec 5.1): their inputs and outputs must always be partitioned
        identically, so they never add partition choices of their own.
        """
        if self.has_opaque or self.reduction_vars:
            return False
        out_names = [v.name for v in self.output_vars]
        for access in self.tensor_accesses():
            names = []
            for idx in access.indices:
                if isinstance(idx, FullSlice):
                    return False
                if not isinstance(idx, IndexVar):
                    return False
                names.append(idx.name)
            if names != out_names:
                return False
        return True

    def describable(self) -> bool:
        """Whether this operator can be analysed at all (always true once a
        TDLOperator exists; opaque bodies restrict, not prevent, analysis)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        outs = ", ".join(v.name for v in self.output_vars)
        return f"TDLOperator({self.name}, lambda {outs}: ...)"


def build_description(fn: Callable, name: Optional[str] = None) -> TDLOperator:
    """Execute a TDL description function and capture its AST."""
    op_name = name or fn.__name__
    signature = inspect.signature(fn)
    input_names = list(signature.parameters)
    args = [TensorArg(arg, i) for i, arg in enumerate(input_names)]
    result = fn(*args)
    if not callable(result):
        raise TDLError(
            f"TDL description {op_name!r} must return a lambda over output indices"
        )
    out_sig = inspect.signature(result)
    out_var_names = list(out_sig.parameters)
    output_vars = [IndexVar(v, kind="output") for v in out_var_names]
    body = wrap(result(*output_vars))
    if not isinstance(body, Expr):
        raise TDLError(f"TDL description {op_name!r} produced a non-expression body")

    reduction_vars: List[IndexVar] = []
    seen = set()
    for red in find_reductions(body):
        for var in red.variables:
            if id(var) not in seen:
                seen.add(id(var))
                reduction_vars.append(var)
    has_opaque = bool(find_opaque_calls(body))
    return TDLOperator(
        name=op_name,
        input_names=input_names,
        output_vars=output_vars,
        body=body,
        reduction_vars=reduction_vars,
        has_opaque=has_opaque,
    )


def op(fn: Optional[Callable] = None, *, name: Optional[str] = None):
    """Decorator turning a description function into a :class:`TDLOperator`.

    Can be used bare (``@op``) or with a name override (``@op(name="dot")``).
    """
    if fn is None:
        return lambda f: build_description(f, name=name)
    return build_description(fn, name=name)


def elementwise(name: str, arity: int = 1) -> TDLOperator:
    """Convenience constructor for element-wise operators of any arity.

    The vast majority of MXNet/TensorFlow operators are element-wise (77 of
    the 134 describable MXNet operators per Sec 4.1); this helper keeps the
    catalogue compact without hand-writing 77 identical lambdas.  The
    resulting description accesses every input at exactly the output indices,
    over a canonical 4-dimensional index space (the analysis only cares about
    index-variable structure, not arity of the index space).
    """
    if arity < 1:
        raise TDLError("element-wise operators need at least one input")
    input_names = [f"in{i}" for i in range(arity)]
    out_vars = [IndexVar(v, kind="output") for v in ("i0", "i1", "i2", "i3")]
    args = [TensorArg(n, i) for i, n in enumerate(input_names)]
    body: Expr = args[0][tuple(out_vars)]
    for extra in args[1:]:
        body = body + extra[tuple(out_vars)]
    return TDLOperator(
        name=name,
        input_names=input_names,
        output_vars=out_vars,
        body=body,
        reduction_vars=[],
        has_opaque=False,
    )
