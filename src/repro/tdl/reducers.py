"""Built-in TDL reducers: ``Sum``, ``Max``, ``Min``, ``Prod``.

A reducer is a commutative and associative aggregation over one or more
reduction index variables (Sec 4.1).  Reducers are what make the
``partition-n-reduce`` *reduce* step possible: partitioning along a reduction
dimension produces partial outputs that are combined with the reducer.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.errors import TDLError
from repro.tdl.expr import Expr, IndexVar, Reduce, wrap


def _make_reducer(name: str) -> Callable:
    def reducer(body_fn: Callable) -> Reduce:
        """Build a :class:`Reduce` node from ``lambda r1, r2, ...: expr``."""
        if not callable(body_fn):
            raise TDLError(f"{name} expects a lambda, got {body_fn!r}")
        signature = inspect.signature(body_fn)
        var_names = list(signature.parameters)
        if not var_names:
            raise TDLError(f"{name} lambda must take at least one reduction variable")
        variables = tuple(IndexVar(v, kind="reduction") for v in var_names)
        body = wrap(body_fn(*variables))
        if not isinstance(body, Expr):
            raise TDLError(f"{name} lambda must return a TDL expression")
        return Reduce(name.lower(), variables, body)

    reducer.__name__ = name
    reducer.__qualname__ = name
    return reducer


Sum = _make_reducer("Sum")
Max = _make_reducer("Max")
Min = _make_reducer("Min")
Prod = _make_reducer("Prod")

#: Mapping from reducer name to the identity element of the reduction, used by
#: the partitioned-graph generator when emitting aggregation operators.
REDUCER_IDENTITY = {
    "sum": 0.0,
    "prod": 1.0,
    "max": float("-inf"),
    "min": float("inf"),
}

#: Reducers whose aggregation operator is supported by the all-reduce spread
#: optimisation in Sec 6.
ALL_REDUCERS = tuple(REDUCER_IDENTITY)
