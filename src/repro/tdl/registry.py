"""Registry mapping operator names to their TDL descriptions.

The operator library (:mod:`repro.ops`) registers a description for every
operator it defines; the partition-strategy discovery pass looks descriptions
up here.  The registry also powers the Sec 4.1 coverage statistics
(describable / element-wise / opaque / with-reduction counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import TDLError
from repro.tdl.lang import TDLOperator


@dataclass
class DescriptionEntry:
    """A registered TDL description together with catalogue metadata."""

    name: str
    description: Optional[TDLOperator]
    describable: bool
    category: str  # "elementwise" | "reduction" | "opaque" | "general" | "undescribable"
    reason: Optional[str] = None  # why undescribable, for the coverage report


class DescriptionRegistry:
    """Holds TDL descriptions keyed by operator name."""

    def __init__(self) -> None:
        self._entries: Dict[str, DescriptionEntry] = {}

    def register(
        self,
        description: TDLOperator,
        *,
        name: Optional[str] = None,
    ) -> DescriptionEntry:
        op_name = name or description.name
        if description.has_opaque:
            category = "opaque"
        elif description.is_elementwise():
            category = "elementwise"
        elif description.reduction_vars:
            category = "reduction"
        else:
            category = "general"
        entry = DescriptionEntry(
            name=op_name,
            description=description,
            describable=True,
            category=category,
        )
        self._entries[op_name] = entry
        return entry

    def register_undescribable(self, name: str, reason: str) -> DescriptionEntry:
        """Record an operator that TDL cannot express (Sec 4.1 lists three
        such categories: sparse manipulation, dynamic output shapes, and
        data-dependent indexing)."""
        entry = DescriptionEntry(
            name=name,
            description=None,
            describable=False,
            category="undescribable",
            reason=reason,
        )
        self._entries[name] = entry
        return entry

    # ---------------------------------------------------------------- access
    def get(self, name: str) -> Optional[TDLOperator]:
        entry = self._entries.get(name)
        if entry is None:
            return None
        return entry.description

    def require(self, name: str) -> TDLOperator:
        description = self.get(name)
        if description is None:
            raise TDLError(f"operator {name!r} has no TDL description")
        return description

    def entry(self, name: str) -> Optional[DescriptionEntry]:
        return self._entries.get(name)

    def __contains__(self, name: str) -> bool:
        entry = self._entries.get(name)
        return entry is not None and entry.describable

    def names(self) -> List[str]:
        return sorted(self._entries)

    def entries(self) -> Iterable[DescriptionEntry]:
        return list(self._entries.values())

    # ------------------------------------------------------------ statistics
    def coverage_report(self) -> Dict[str, int]:
        """Statistics matching the breakdown reported in Sec 4.1."""
        report = {
            "total": 0,
            "describable": 0,
            "elementwise": 0,
            "opaque": 0,
            "with_reduction": 0,
            "undescribable": 0,
        }
        for entry in self._entries.values():
            report["total"] += 1
            if not entry.describable:
                report["undescribable"] += 1
                continue
            report["describable"] += 1
            if entry.category == "elementwise":
                report["elementwise"] += 1
            elif entry.category == "opaque":
                report["opaque"] += 1
            elif entry.category == "reduction":
                report["with_reduction"] += 1
        return report


#: The process-global registry used by :mod:`repro.ops`.
GLOBAL_REGISTRY = DescriptionRegistry()


def register_description(description: TDLOperator, name: Optional[str] = None):
    """Register ``description`` in the global registry and return it."""
    GLOBAL_REGISTRY.register(description, name=name)
    return description


def get_description(name: str) -> Optional[TDLOperator]:
    return GLOBAL_REGISTRY.get(name)
