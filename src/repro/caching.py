"""Shared two-tier cache plumbing.

Both content-addressed stores of the pipeline — the partition-plan cache
(:mod:`repro.planner.cache`) and the lowered-program cache
(:mod:`repro.runtime.cache`) — need exactly the same machinery: an in-memory
LRU over JSON-serialisable payloads, an optional on-disk store (one file per
key) with size accounting and least-recently-used eviction under a byte
budget, hit/miss bookkeeping, and ``export``/``import`` bundles for moving a
store between machines.  :class:`TwoTierCache` is that machinery, factored
out once; the two caches subclass it with their payload codec and bundle
format name.

Content-address helpers (:func:`graph_signature`, :func:`machine_signature`,
:func:`content_key`) also live here so both key schemes hash identical
inputs identically.
"""

from __future__ import annotations

import dataclasses
import glob
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.graph.serialization import graph_to_dict
from repro.sim.device import Topology


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------
def graph_signature(graph: Graph) -> str:
    """Content hash of a graph (tensors, nodes, attrs, metadata)."""
    payload = json.dumps(graph_to_dict(graph), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def machine_signature(machine: Optional[Topology]) -> str:
    """Content hash of a machine or cluster model (``"no-machine"`` when
    unspecified) — a one-machine cluster and its bare machine hash
    differently, as do clusters differing only in machine count or network
    parameters."""
    if machine is None:
        return "no-machine"
    payload = json.dumps(
        dataclasses.asdict(machine), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def content_key(fields: Dict) -> str:
    """SHA-256 over the canonical JSON encoding of ``fields``.

    Raises ``TypeError`` when a field is not JSON-serialisable — such inputs
    have no stable content address, so callers bypass their cache for them.
    """
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The shared store
# ---------------------------------------------------------------------------
class TwoTierCache:
    """In-memory LRU over JSON payload dicts, with an optional disk tier.

    Subclasses set three class attributes: ``export_format`` (the bundle
    format marker), ``export_version``, and ``payload_field`` (the JSON key
    a disk entry stores its payload under — ``"plan"`` for plans,
    ``"program"`` for lowered programs, which keeps the plan cache's
    pre-refactor on-disk layout byte-compatible), plus ``description`` for
    error messages.

    Payloads are plain dictionaries; value↔payload conversion (e.g.
    ``plan_to_dict``/``plan_from_dict``) belongs to the subclass, which keeps
    the invariant that every hit reconstructs a fresh object — callers can
    mutate what they get back without corrupting the store.

    The store is thread-safe: one re-entrant lock guards the memory LRU and
    the disk accounting (eviction counter, budget sweeps), so the compile
    service's worker threads can share one cache.  Disk entry files were
    already safe (atomic tempfile + ``os.replace`` writes); the lock makes
    the bookkeeping around them coherent too.
    """

    export_format: str = "tofu-cache"
    export_version: int = 1
    payload_field: str = "entry"
    description: str = "cache"

    def __init__(
        self,
        capacity: int = 128,
        cache_dir: Optional[str] = None,
        *,
        max_bytes: Optional[int] = None,
    ):
        self.capacity = max(0, capacity)
        self.cache_dir = cache_dir
        self.max_bytes = max_bytes
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        # Re-entrant: get_payload holds the lock while _memory_put runs.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.disk_evictions = 0
        if cache_dir:
            try:
                os.makedirs(cache_dir, exist_ok=True)
            except OSError as exc:
                raise ReproError(
                    f"{self.description} directory {cache_dir!r} is not "
                    f"usable: {exc}"
                ) from exc

    @property
    def enabled(self) -> bool:
        return self.capacity > 0 or self.cache_dir is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any lookup)."""
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def info(self) -> Dict[str, object]:
        with self._lock:
            info: Dict[str, object] = {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate(),
                "size": len(self._memory),
            }
            if self.cache_dir:
                info["disk_bytes"] = self.disk_bytes()
                info["disk_entries"] = len(self._disk_entries())
                info["disk_evictions"] = self.disk_evictions
            return info

    def disk_bytes(self) -> int:
        """Total size of the on-disk store (0 without a disk tier)."""
        return sum(size for _, size, _ in self._disk_entries())

    # ------------------------------------------------------------- payloads
    def get_payload(self, key: str) -> Optional[Dict]:
        """The stored payload under ``key`` (memory first, then disk)."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return payload
            payload = self._disk_get(key)
            if payload is not None:
                self._memory_put(key, payload)
                self.hits += 1
                return payload
            self.misses += 1
            return None

    def put_payload(self, key: str, payload: Dict) -> None:
        """Store ``payload`` in both tiers."""
        with self._lock:
            self._memory_put(key, payload)
            self._disk_put(key, payload)

    def snapshot_payloads(self) -> Dict[str, Dict]:
        """A copy of every in-memory entry (``key -> payload``).

        This is the in-process counterpart of :meth:`export_to`: a pool
        worker snapshots the entries its searches produced and ships them
        back to the parent, which folds them in with
        :meth:`merge_payloads` — no disk tier required on either side.
        Lookup counters are untouched.
        """
        with self._lock:
            return dict(self._memory)

    def merge_payloads(self, payloads: Dict[str, Dict]) -> int:
        """Fold ``key -> payload`` entries into the store; returns how many
        were new.

        Content addresses make key collisions equal-payload collisions, so
        entries already present are skipped rather than overwritten (the
        same policy as :meth:`import_from`).  New entries land in both
        tiers.
        """
        merged = 0
        with self._lock:
            for key, payload in payloads.items():
                if key in self._memory:
                    continue
                if self._disk_get(key) is not None:
                    continue
                self._memory_put(key, payload)
                self._disk_put(key, payload)
                merged += 1
        return merged

    # --------------------------------------------------------- export/import
    def export_to(self, path: str) -> int:
        """Bundle every on-disk entry into one JSON file at ``path``.

        Content addresses are host-independent (every key input is
        canonically encoded), so a bundle exported on one machine imports
        losslessly on another.  Returns the number of exported entries;
        requires a disk tier.
        """
        if not self.cache_dir:
            raise ReproError(
                f"{self.description} export needs a disk tier "
                f"(configure cache_dir)"
            )
        entries: Dict[str, Dict] = {}
        for file_path, _, _ in self._disk_entries():
            try:
                with open(file_path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
                entries[entry["key"]] = entry[self.payload_field]
            except (OSError, ValueError, KeyError):
                continue  # unreadable/corrupt entries are skipped, not fatal
        bundle = {
            "format": self.export_format,
            "version": self.export_version,
            "entries": entries,
        }
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh)
        os.replace(tmp, path)
        return len(entries)

    def import_from(self, path: str, *, replace: bool = False) -> Dict[str, int]:
        """Merge a bundle written by :meth:`export_to` into the disk store.

        Existing entries are kept unless ``replace=True`` (content addresses
        make key collisions equal-payload collisions, so keeping is safe).
        Returns ``{"imported": ..., "skipped": ...}``; requires a disk tier.
        """
        if not self.cache_dir:
            raise ReproError(
                f"{self.description} import needs a disk tier "
                f"(configure cache_dir)"
            )
        try:
            with open(path, "r", encoding="utf-8") as fh:
                bundle = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"{self.description} bundle {path!r} is not readable JSON: "
                f"{exc}"
            ) from exc
        if bundle.get("format") != self.export_format:
            raise ReproError(
                f"{path!r} is not a {self.export_format} bundle "
                f"(format={bundle.get('format')!r})"
            )
        if bundle.get("version") != self.export_version:
            raise ReproError(
                f"unsupported {self.description} bundle version "
                f"{bundle.get('version')!r} (this library reads version "
                f"{self.export_version})"
            )
        imported = skipped = 0
        with self._lock:
            for key, payload in (bundle.get("entries") or {}).items():
                if not replace and os.path.exists(self._path(key)):
                    skipped += 1
                    continue
                self._disk_put(key, payload)
                imported += 1
        return {"imported": imported, "skipped": skipped}

    def clear(self) -> None:
        """Empty both tiers (memory and, when configured, the disk store)."""
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
            self.disk_evictions = 0
            if self.cache_dir:
                for path in glob.glob(os.path.join(self.cache_dir, "*.json")):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass

    # ------------------------------------------------------------- internals
    def _memory_put(self, key: str, payload: Dict) -> None:
        if self.capacity <= 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _disk_get(self, key: str) -> Optional[Dict]:
        if not self.cache_dir:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            payload = entry[self.payload_field]
        except (OSError, ValueError, KeyError):
            return None
        try:
            os.utime(path, None)  # refresh LRU recency on hit
        except OSError:
            pass
        return payload

    def _disk_put(self, key: str, payload: Dict) -> None:
        if not self.cache_dir:
            return
        entry = json.dumps({"key": key, self.payload_field: payload})
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(entry)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._disk_enforce_budget(keep=self._path(key))

    def _disk_entries(self):
        """``(path, size, mtime)`` of every stored entry file."""
        if not self.cache_dir:
            return []
        entries = []
        for path in glob.glob(os.path.join(self.cache_dir, "*.json")):
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((path, stat.st_size, stat.st_mtime))
        return entries

    def _disk_enforce_budget(self, keep: Optional[str] = None) -> None:
        """Evict least-recently-used files until the store fits ``max_bytes``.

        ``keep`` protects the entry just written: even when one payload alone
        exceeds the budget the caller's own entry must survive the sweep, so
        hit-after-put stays guaranteed within a process.
        """
        if self.max_bytes is None or not self.cache_dir:
            return
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        entries.sort(key=lambda item: item[2])  # oldest mtime first
        for path, size, _ in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and os.path.abspath(path) == os.path.abspath(keep):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.disk_evictions += 1
